(* Tests for the sharded metadata plane: consistent-hash ring mapping
   determinism, configuration validation, hotspot promote/demote
   hysteresis, the replicated plane's untouched default path, shard
   handoff across a crash/restart window, partition -> heal shard
   convergence, lookup-path conservation, a 50-seed sweep, and the
   stale-hint invalidation regression. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let expect_invalid what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what

let in_engine f =
  let eng = Sim.Engine.create () in
  let result = ref None in
  Sim.Engine.spawn eng (fun () -> result := Some (f ()));
  Sim.Engine.run eng;
  match !result with Some v -> v | None -> Alcotest.fail "process did not run"

let meta ?(owner = 0) ?(size = 100) ?(created = 0.) ?expires key =
  Cache.Meta.make ~key ~owner ~size ~exec_time:0.5 ~created ~expires

let key_of i = Printf.sprintf "GET /cgi-bin/query?q=k%d" i

(* ------------------------------------------------------------------ *)
(* Ring: deterministic mapping, distinct successors, liveness routing *)

let test_ring_deterministic () =
  let a = Cache.Ring.create ~nodes:8 ~vnodes:64
  and b = Cache.Ring.create ~nodes:8 ~vnodes:64 in
  for i = 0 to 1999 do
    let key = key_of i in
    let o = Cache.Ring.owner a key in
    check_bool "owner in range" true (o >= 0 && o < 8);
    check_int (Printf.sprintf "same owner for %s" key) o
      (Cache.Ring.owner b key)
  done;
  (* The mapping must not depend on any ambient state: a third ring built
     after unrelated hashing agrees too. *)
  let c = Cache.Ring.create ~nodes:8 ~vnodes:64 in
  check_int "rebuilt ring agrees" (Cache.Ring.owner a "GET /x")
    (Cache.Ring.owner c "GET /x")

let test_ring_successors () =
  let r = Cache.Ring.create ~nodes:6 ~vnodes:32 in
  for i = 0 to 199 do
    let key = key_of i in
    let succ = Cache.Ring.successors r key ~k:4 in
    check_int "k distinct successors" 4
      (List.length (List.sort_uniq compare succ));
    check_int "head is the owner" (Cache.Ring.owner r key) (List.hd succ)
  done;
  check_int "k beyond n saturates at n" 6
    (List.length (Cache.Ring.successors r "GET /x" ~k:99));
  expect_invalid "k = 0" (fun () ->
      ignore (Cache.Ring.successors r "GET /x" ~k:0 : int list))

let test_ring_acting_owner () =
  let r = Cache.Ring.create ~nodes:4 ~vnodes:64 in
  let key = "GET /cgi-bin/query?q=hot" in
  let home = Cache.Ring.owner r key in
  check_bool "all up: acting = owner" true
    (Cache.Ring.acting_owner r ~up:(fun _ -> true) key = Some home);
  (* With the home down, the acting owner is the next distinct successor
     — and deterministic. *)
  (match Cache.Ring.acting_owner r ~up:(fun i -> i <> home) key with
  | Some a ->
      check_bool "acting owner skips the dead home" true (a <> home);
      check_int "acting owner is the next successor" a
        (List.nth (Cache.Ring.successors r key ~k:2) 1)
  | None -> Alcotest.fail "three live nodes but no acting owner");
  check_bool "all down: no acting owner" true
    (Cache.Ring.acting_owner r ~up:(fun _ -> false) key = None)

let test_ring_spread () =
  let nodes = 8 in
  let r = Cache.Ring.create ~nodes ~vnodes:64 in
  let keys = List.init 8000 key_of in
  let spread = Cache.Ring.spread r ~keys in
  check_int "spread counts every key" 8000 (Array.fold_left ( + ) 0 spread);
  let mean = 8000 / nodes in
  Array.iteri
    (fun i n ->
      if n < mean / 3 || n > mean * 3 then
        Alcotest.failf "node %d homes %d of 8000 keys (mean %d): vnodes \
                        failed to smooth the ring" i n mean)
    spread

(* ------------------------------------------------------------------ *)
(* Configuration validation *)

let test_shard_config_validation () =
  let valid cfg = Swala.Config.validate cfg in
  let sharded ?(mode = Swala.Config.Cooperative) f =
    f (fun ?batch_max ?batch_flush_interval ?dir_hints ?anti_entropy_period
           ?consistency ?hotspot_threshold () ->
          Swala.Config.make ~n_nodes:4 ~cache_mode:mode
            ~dir_mode:Swala.Config.Sharded ?batch_max ?batch_flush_interval
            ?dir_hints ?anti_entropy_period ?consistency ?hotspot_threshold ())
  in
  sharded (fun make -> valid (make ()));
  sharded (fun make ->
      expect_invalid "sharded + batching" (fun () ->
          valid (make ~batch_max:8 ~batch_flush_interval:(Some 0.01) ())));
  sharded (fun make ->
      expect_invalid "sharded + hints" (fun () ->
          valid (make ~dir_hints:true ())));
  sharded (fun make ->
      expect_invalid "sharded + anti-entropy" (fun () ->
          valid (make ~anti_entropy_period:(Some 1.0) ())));
  sharded (fun make ->
      expect_invalid "sharded + strong consistency" (fun () ->
          valid (make ~consistency:Swala.Config.Strong ())));
  expect_invalid "hotspot on the replicated plane" (fun () ->
      valid
        (Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
           ~hotspot_threshold:2.0 ()));
  expect_invalid "zero vnodes" (fun () ->
      valid
        (Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
           ~dir_mode:Swala.Config.Sharded ~shard_vnodes:0 ()))

(* ------------------------------------------------------------------ *)
(* Hotspot detector: promote at T, demote below T/2, only via sweep *)

let test_hotspot_hysteresis () =
  let h = Cache.Hotspot.create ~threshold:2.0 ~window:2.0 in
  let key = "GET /cgi-bin/query?q=hot" in
  (* A burst well over the threshold promotes exactly once. *)
  let promotions = ref 0 in
  for i = 0 to 9 do
    match Cache.Hotspot.record h ~now:(0.1 *. float_of_int i) key with
    | `Promoted -> incr promotions
    | `Noted -> ()
  done;
  check_int "the crossing promotes exactly once" 1 !promotions;
  check_bool "key is hot" true (Cache.Hotspot.is_hot h key);
  (* A trickle above T/2 keeps it hot through a sweep (hysteresis)... *)
  ignore (Cache.Hotspot.record h ~now:2.2 key : [ `Promoted | `Noted ]);
  ignore (Cache.Hotspot.record h ~now:2.6 key : [ `Promoted | `Noted ]);
  Alcotest.(check (list string)) "mid-rate sweep demotes nothing" []
    (Cache.Hotspot.sweep h ~now:3.0);
  check_bool "still hot after the sweep" true (Cache.Hotspot.is_hot h key);
  (* ...and without a sweep nothing ever demotes, however long idle. *)
  check_bool "no auto-demotion between sweeps" true
    (Cache.Hotspot.is_hot h key);
  (* A sweep after the key went fully cold demotes it. *)
  Alcotest.(check (list string)) "cold sweep demotes the key" [ key ]
    (Cache.Hotspot.sweep h ~now:60.0);
  check_bool "demoted" false (Cache.Hotspot.is_hot h key);
  check_int "no hot keys left" 0 (Cache.Hotspot.hot_count h);
  (* The cycle can repeat: a fresh burst re-promotes. *)
  promotions := 0;
  for i = 0 to 9 do
    match Cache.Hotspot.record h ~now:(100. +. (0.1 *. float_of_int i)) key with
    | `Promoted -> incr promotions
    | `Noted -> ()
  done;
  check_int "re-promotion after demotion" 1 !promotions;
  let p, d = Cache.Hotspot.stats h in
  check_int "two promotions counted" 2 p;
  check_int "one demotion counted" 1 d

let test_hotspot_slow_key_never_promotes () =
  let h = Cache.Hotspot.create ~threshold:2.0 ~window:2.0 in
  for i = 0 to 9 do
    match Cache.Hotspot.record h ~now:(2.0 *. float_of_int i) "GET /cold" with
    | `Promoted -> Alcotest.fail "a 0.5/s key crossed a 2/s threshold"
    | `Noted -> ()
  done;
  check_bool "cold key stays cold" false (Cache.Hotspot.is_hot h "GET /cold")

let test_hotspot_forget () =
  let h = Cache.Hotspot.create ~threshold:1.0 ~window:1.0 in
  for i = 0 to 4 do
    ignore
      (Cache.Hotspot.record h ~now:(0.1 *. float_of_int i) "GET /k"
        : [ `Promoted | `Noted ])
  done;
  check_bool "hot before forget" true (Cache.Hotspot.is_hot h "GET /k");
  check_bool "forgetting a hot key reports it" true
    (Cache.Hotspot.forget h "GET /k");
  check_bool "forgotten" false (Cache.Hotspot.is_hot h "GET /k");
  check_bool "forgetting a cold key reports false" false
    (Cache.Hotspot.forget h "GET /never")

(* ------------------------------------------------------------------ *)
(* Regression: a false hint must invalidate the stale hint entry, so
   repeated lookups of the same dead key pay the fallback only once. *)

let test_false_hint_invalidated () =
  in_engine (fun () ->
      let d = Cache.Directory.create ~nodes:4 ~hints:true () in
      Cache.Directory.insert d ~node:1 (meta ~owner:1 ~expires:1. "k");
      check_bool "expired entry is absent" true
        (Cache.Directory.lookup_from d ~self:0 ~now:5. "k" = None);
      let _, false_hints = Cache.Directory.hint_stats d in
      check_int "first lookup pays the false hint" 1 false_hints;
      (* The hint died with that lookup: further lookups are plain
         hint-less scans, not false hints, however many run. *)
      for _ = 1 to 5 do
        ignore (Cache.Directory.lookup_from d ~self:0 ~now:5. "k")
      done;
      let _, false_hints = Cache.Directory.hint_stats d in
      check_int "the stale hint was invalidated, not re-probed" 1 false_hints;
      (* A fresh insert re-hints the key and lookups work again. *)
      Cache.Directory.insert d ~node:3 (meta ~owner:3 "k");
      match Cache.Directory.lookup_from d ~self:0 ~now:5. "k" with
      | Some m -> check_int "re-hinted lookup finds the live copy" 3
                    m.Cache.Meta.owner
      | None -> Alcotest.fail "re-inserted key not found")

(* ------------------------------------------------------------------ *)
(* Cluster level *)

let coop_trace ~seed ~n =
  Workload.Synthetic.coop ~seed ~n ~n_unique:(n * 7 / 10) ~n_hot:(n / 10) ()

let counters_equal msg a b =
  check_bool (msg ^ ": Counter.equal") true (Metrics.Counter.equal a b);
  let names = Metrics.Counter.names a in
  Alcotest.(check (list string)) (msg ^ ": same counter set") names
    (Metrics.Counter.names b);
  List.iter
    (fun n ->
      check_int
        (Printf.sprintf "%s: counter %s" msg n)
        (Metrics.Counter.get a n) (Metrics.Counter.get b n))
    names

let query q = Http.Request.get (Printf.sprintf "/cgi-bin/query?q=%s&xd=0.2" q)

let run_cluster_script ~cfg ~registry ?(n_client_endpoints = 2) script =
  let engine = Sim.Engine.create () in
  let cluster =
    Swala.Server.create_cluster engine cfg ~registry ~n_client_endpoints
  in
  Swala.Server.start cluster;
  Sim.Engine.spawn engine (fun () ->
      script cluster;
      Swala.Server.stop cluster);
  Sim.Engine.run engine;
  cluster

(* The default (replicated) plane must carry no trace of the sharded
   machinery: no sharded counters, no forwarded lookups, and the
   directory accessor still works — while a sharded node refuses it. *)
let test_replicated_untouched () =
  let trace = coop_trace ~seed:7 ~n:400 in
  let r =
    Swala.Cluster_runner.run
      (Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
         ~seed:7 ())
      ~trace ~n_streams:8 ()
  in
  Alcotest.(check string) "mode string" "replicated"
    r.Swala.Cluster_runner.dir_mode;
  List.iter
    (fun name ->
      check_int (Printf.sprintf "replicated run has zero %s" name) 0
        (Metrics.Counter.get r.Swala.Cluster_runner.counters name))
    [
      Swala.Server.K.shard_local_lookups;
      Swala.Server.K.shard_fwd_lookups;
      Swala.Server.K.shard_replica_hits;
      Swala.Server.K.dir_lookup_msgs;
      Swala.Server.K.dir_lookup_timeouts;
      Swala.Server.K.lcache_pos_hits;
      Swala.Server.K.hotspot_promotions;
      Swala.Server.K.shard_handoff_reannounced;
      Swala.Server.K.shard_pruned;
    ];
  check_int "no forwarded waits on the replicated plane" 0
    (Metrics.Histogram.count r.Swala.Cluster_runner.forward_wait);
  check_bool "every node holds the full key population" true
    (Array.for_all
       (fun n -> n = r.Swala.Cluster_runner.dir_entries.(0))
       r.Swala.Cluster_runner.dir_entries)

let test_node_directory_raises_on_sharded () =
  let registry = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts registry;
  let cfg =
    Swala.Config.make ~n_nodes:2 ~cache_mode:Swala.Config.Cooperative
      ~dir_mode:Swala.Config.Sharded ~seed:1 ()
  in
  let (_ : Swala.Server.cluster) =
    run_cluster_script ~cfg ~registry (fun cluster ->
        let nd = Swala.Server.node cluster 0 in
        expect_invalid "node_directory on a sharded node" (fun () ->
            ignore (Swala.Server.node_directory nd : Cache.Directory.t));
        check_bool "node_plane unpacks as sharded" true
          (Cache.Metadata_plane.shard (Swala.Server.node_plane nd) <> None);
        Alcotest.(check string) "plane mode name" "sharded"
          (Cache.Metadata_plane.mode_name (Swala.Server.node_plane nd)))
  in
  ()

(* Same seed, same sharded+hotspot config: two runs agree on every
   counter — the new plane does not perturb determinism. *)
let test_sharded_replay_deterministic () =
  let trace = coop_trace ~seed:13 ~n:400 in
  let run () =
    Swala.Cluster_runner.run
      (Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
         ~dir_mode:Swala.Config.Sharded ~hotspot_threshold:1.0
         ~hotspot_window:1.0 ~seed:13 ())
      ~trace ~n_streams:8 ()
  in
  let a = run () and b = run () in
  check_float "same makespan" a.Swala.Cluster_runner.duration
    b.Swala.Cluster_runner.duration;
  counters_equal "sharded replay" a.Swala.Cluster_runner.counters
    b.Swala.Cluster_runner.counters

(* Every cacheable cooperative CGI request resolves its directory lookup
   by exactly one of the five sharded paths. *)
let lookup_conservation msg n counters =
  let get = Metrics.Counter.get counters in
  check_int
    (msg ^ ": local + replica + lcache + forwarded = requests")
    n
    (get Swala.Server.K.shard_local_lookups
    + get Swala.Server.K.shard_replica_hits
    + get Swala.Server.K.lcache_pos_hits
    + get Swala.Server.K.lcache_neg_hits
    + get Swala.Server.K.shard_fwd_lookups)

let test_sharded_lookup_conservation () =
  let n = 500 in
  let trace = coop_trace ~seed:21 ~n in
  let r =
    Swala.Cluster_runner.run
      (Swala.Config.make ~n_nodes:5 ~cache_mode:Swala.Config.Cooperative
         ~dir_mode:Swala.Config.Sharded ~seed:21 ())
      ~trace ~n_streams:10 ()
  in
  check_int "every request answered" n
    (Metrics.Sample.count r.Swala.Cluster_runner.response);
  lookup_conservation "fault-free" n r.Swala.Cluster_runner.counters;
  (* Forwarded wire accounting: requests counted at requesters, replies
     at homes — two messages per completed round trip. *)
  let get = Metrics.Counter.get r.Swala.Cluster_runner.counters in
  check_int "two lookup messages per forwarded round trip"
    (2 * get Swala.Server.K.shard_fwd_lookups)
    (get Swala.Server.K.dir_lookup_msgs)

(* Handoff across a deterministic crash window: node 1 is down over
   [2 s, 4 s). While it is down its shard duties move to ring
   successors; after the restart they move back. At every probe point,
   each live node's cached entries are findable at the key's acting
   home, and no node's shard table holds keys it does not answer for. *)
let test_shard_handoff_crash_restart () =
  let registry = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts registry;
  let cfg =
    Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
      ~dir_mode:Swala.Config.Sharded
      ~fault:(Some (Sim.Fault.make ~node_schedules:[ (1, [ (2., 4.) ]) ] ()))
      ~fetch_timeout:(Some 0.5) ~seed:5 ()
  in
  let shard_of cluster i =
    match
      Cache.Metadata_plane.shard
        (Swala.Server.node_plane (Swala.Server.node cluster i))
    with
    | Some st -> st
    | None -> Alcotest.fail "expected a sharded plane"
  in
  let check_converged cluster msg =
    let up i = Swala.Server.node_up (Swala.Server.node cluster i) in
    let ring = (shard_of cluster 0).Cache.Metadata_plane.Sharded.ring in
    for i = 0 to 3 do
      if up i then begin
        let nd = Swala.Server.node cluster i in
        (* Every live cached entry is registered at its acting home. *)
        List.iter
          (fun key ->
            match Cache.Ring.acting_owner ring ~up key with
            | None -> Alcotest.fail "live node but no acting owner"
            | Some home -> (
                let table =
                  (shard_of cluster home).Cache.Metadata_plane.Sharded.table
                in
                match Cache.Shard_table.find table key with
                | Some _ -> ()
                | None ->
                    Alcotest.failf
                      "%s: node %d caches %s but acting home %d has no \
                       entry"
                      msg i key home))
          (Cache.Store.keys (Swala.Server.node_store nd));
        (* And no live node squats on a shard it does not answer for
           (hotspot replication is off here). *)
        List.iter
          (fun (m : Cache.Meta.t) ->
            match Cache.Ring.acting_owner ring ~up m.Cache.Meta.key with
            | Some home when home = i -> ()
            | Some home ->
                Alcotest.failf
                  "%s: node %d's table holds %s, homed at %d" msg i
                  m.Cache.Meta.key home
            | None -> Alcotest.fail "live node but no acting owner")
          (Cache.Shard_table.entries
             (shard_of cluster i).Cache.Metadata_plane.Sharded.table)
      end
    done
  in
  let cluster =
    run_cluster_script ~cfg ~registry (fun cluster ->
        (* 26 keys spread over the ring, cached at alternating nodes. *)
        List.iteri
          (fun i q ->
            Swala.Server.preload cluster ~node:(i mod 4)
              (query (String.make 1 q))
              ~exec_time:0.3)
          [ 'a'; 'b'; 'c'; 'd'; 'e'; 'f'; 'g'; 'h'; 'i'; 'j'; 'k'; 'l';
            'm'; 'n'; 'o'; 'p'; 'q'; 'r'; 's'; 't'; 'u'; 'v'; 'w'; 'x';
            'y'; 'z' ];
        Sim.Engine.delay 1.0;
        check_converged cluster "before the crash (t=1)";
        check_bool "node 1 still up at t=1" true
          (Swala.Server.node_up (Swala.Server.node cluster 1));
        Sim.Engine.delay 2.0;
        (* t=3: node 1 is down; its duties have moved to successors. *)
        check_bool "node 1 down at t=3" false
          (Swala.Server.node_up (Swala.Server.node cluster 1));
        check_converged cluster "during the outage (t=3)";
        Sim.Engine.delay 2.0;
        (* t=5: node 1 restarted; duties moved back, squatters pruned. *)
        check_bool "node 1 back up at t=5" true
          (Swala.Server.node_up (Swala.Server.node cluster 1));
        check_converged cluster "after the restart (t=5)")
  in
  let get = Metrics.Counter.get (Swala.Server.merged_counters cluster) in
  check_int "one crash" 1 (get Swala.Server.K.crashes);
  check_int "one restart" 1 (get Swala.Server.K.restarts);
  check_bool "handoff re-announced entries" true
    (get Swala.Server.K.shard_handoff_reannounced > 0);
  check_bool "the ring's return pruned the stand-ins" true
    (get Swala.Server.K.shard_pruned > 0)

(* Partition -> divergence -> heal -> convergence, sharded edition: while
   the halves are split, announcements across the cut are lost; the heal
   triggers a handoff that re-announces everything, after which every
   cached entry is once more findable at its ring home. *)
let test_shard_partition_heal_convergence () =
  let registry = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts registry;
  let halves =
    { Sim.Fault.pname = "halves"; groups = [ [ 0; 1 ]; [ 2; 3 ] ];
      cut_at = 1.0; heal_at = 6.0 }
  in
  let cfg =
    Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
      ~dir_mode:Swala.Config.Sharded
      ~fault:(Some (Sim.Fault.make ~partitions:[ halves ] ()))
      ~fetch_timeout:(Some 0.5) ~seed:11 ()
  in
  let shard_of cluster i =
    match
      Cache.Metadata_plane.shard
        (Swala.Server.node_plane (Swala.Server.node cluster i))
    with
    | Some st -> st
    | None -> Alcotest.fail "expected a sharded plane"
  in
  let missing_at_home cluster =
    let ring = (shard_of cluster 0).Cache.Metadata_plane.Sharded.ring in
    let missing = ref 0 in
    for i = 0 to 3 do
      List.iter
        (fun key ->
          let home = Cache.Ring.owner ring key in
          let table =
            (shard_of cluster home).Cache.Metadata_plane.Sharded.table
          in
          if Cache.Shard_table.find table key = None then incr missing)
        (Cache.Store.keys
           (Swala.Server.node_store (Swala.Server.node cluster i)))
    done;
    !missing
  in
  let diverged = ref 0 in
  let cluster =
    run_cluster_script ~cfg ~registry (fun cluster ->
        (* Cache entries on both sides while split: announcements whose
           home lies across the cut are silently lost. *)
        Sim.Engine.delay 1.5;
        List.iteri
          (fun i q ->
            Swala.Server.preload cluster ~node:(i mod 4)
              (query (String.make 1 q))
              ~exec_time:0.3)
          [ 'a'; 'b'; 'c'; 'd'; 'e'; 'f'; 'g'; 'h'; 'i'; 'j'; 'k'; 'l';
            'm'; 'n'; 'o'; 'p' ];
        Sim.Engine.delay 1.0;
        (* Mid-split (t=3.5): some entries are unfindable at their homes. *)
        diverged := missing_at_home cluster;
        (* Outlive the heal (t=6) and the handoff it triggers. *)
        Sim.Engine.delay 5.5;
        check_int "every cached entry is back at its ring home after heal"
          0 (missing_at_home cluster))
  in
  check_bool "the split actually hid announcements" true (!diverged > 0);
  let get = Metrics.Counter.get (Swala.Server.merged_counters cluster) in
  check_int "the heal was observed" 1 (get Swala.Server.K.partitions_healed);
  check_bool "the heal handoff re-announced entries" true
    (get Swala.Server.K.shard_handoff_reannounced > 0)

(* 50-seed sweep: across seeds, every request is answered and the
   lookup-path accounting balances, with and without hotspot
   replication. *)
let test_multi_seed_conservation () =
  let n = 150 in
  for seed = 0 to 49 do
    let trace = coop_trace ~seed ~n in
    let hotspot = seed mod 2 = 1 in
    let cfg =
      Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
        ~dir_mode:Swala.Config.Sharded
        ~hotspot_threshold:(if hotspot then 1.0 else 0.)
        ~hotspot_window:1.0 ~seed ()
    in
    let r = Swala.Cluster_runner.run cfg ~trace ~n_streams:8 () in
    check_int
      (Printf.sprintf "seed %d: every request answered" seed)
      n
      (Metrics.Sample.count r.Swala.Cluster_runner.response);
    check_int
      (Printf.sprintf "seed %d: every request counted" seed)
      n
      (Metrics.Counter.get r.Swala.Cluster_runner.counters
         Swala.Server.K.requests);
    lookup_conservation (Printf.sprintf "seed %d" seed) n
      r.Swala.Cluster_runner.counters
  done

let () =
  Alcotest.run "shard"
    [
      ( "ring",
        [
          Alcotest.test_case "mapping is deterministic" `Quick
            test_ring_deterministic;
          Alcotest.test_case "successors are distinct, owner-first" `Quick
            test_ring_successors;
          Alcotest.test_case "acting owner follows liveness" `Quick
            test_ring_acting_owner;
          Alcotest.test_case "vnodes smooth the spread" `Quick
            test_ring_spread;
        ] );
      ( "config",
        [ Alcotest.test_case "sharded knobs are validated" `Quick
            test_shard_config_validation ] );
      ( "hotspot",
        [
          Alcotest.test_case "promote/demote hysteresis" `Quick
            test_hotspot_hysteresis;
          Alcotest.test_case "slow keys never promote" `Quick
            test_hotspot_slow_key_never_promotes;
          Alcotest.test_case "forget retracts a hot key" `Quick
            test_hotspot_forget;
        ] );
      ( "hints-regression",
        [ Alcotest.test_case "false hint is invalidated once" `Quick
            test_false_hint_invalidated ] );
      ( "cluster",
        [
          Alcotest.test_case "replicated default is untouched" `Quick
            test_replicated_untouched;
          Alcotest.test_case "node_directory raises on sharded" `Quick
            test_node_directory_raises_on_sharded;
          Alcotest.test_case "sharded replay deterministic" `Quick
            test_sharded_replay_deterministic;
          Alcotest.test_case "lookup-path conservation" `Quick
            test_sharded_lookup_conservation;
          Alcotest.test_case "handoff across crash + restart" `Quick
            test_shard_handoff_crash_restart;
          Alcotest.test_case "partition heal converges the shards" `Quick
            test_shard_partition_heal_convergence;
          Alcotest.test_case "50-seed conservation sweep" `Quick
            test_multi_seed_conservation;
        ] );
    ]
