(* Tests for the simulation substrate: engine, sync primitives, CPU, disk,
   network, RNG, distributions, priority queue. *)

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Pqueue *)

let test_pqueue_order () =
  let h = Sim.Pqueue.create ~cmp:Int.compare in
  List.iter (Sim.Pqueue.push h) [ 5; 1; 4; 1; 3; 9; 0 ];
  let out = ref [] in
  Sim.Pqueue.drain h (fun x -> out := x :: !out);
  Alcotest.(check (list int)) "sorted" [ 0; 1; 1; 3; 4; 5; 9 ] (List.rev !out)

let test_pqueue_empty () =
  let h = Sim.Pqueue.create ~cmp:Int.compare in
  check_bool "empty" true (Sim.Pqueue.is_empty h);
  Alcotest.(check (option int)) "pop none" None (Sim.Pqueue.pop h);
  Alcotest.(check (option int)) "peek none" None (Sim.Pqueue.peek h)

let test_pqueue_peek_stable () =
  let h = Sim.Pqueue.create ~cmp:Int.compare in
  Sim.Pqueue.push h 2;
  Sim.Pqueue.push h 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Sim.Pqueue.peek h);
  check_int "length unchanged" 2 (Sim.Pqueue.length h)

let test_pqueue_clear () =
  let h = Sim.Pqueue.create ~cmp:Int.compare in
  List.iter (Sim.Pqueue.push h) [ 3; 2; 1 ];
  Sim.Pqueue.clear h;
  check_int "cleared" 0 (Sim.Pqueue.length h)

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue drains any list in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Sim.Pqueue.create ~cmp:Int.compare in
      List.iter (Sim.Pqueue.push h) xs;
      let out = ref [] in
      Sim.Pqueue.drain h (fun x -> out := x :: !out);
      List.rev !out = List.sort Int.compare xs)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Sim.Rng.create 7 and b = Sim.Rng.create 7 in
  for _ = 1 to 100 do
    check_float "same stream" (Sim.Rng.float a) (Sim.Rng.float b)
  done

let test_rng_seeds_differ () =
  let a = Sim.Rng.create 1 and b = Sim.Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Sim.Rng.float a = Sim.Rng.float b then incr same
  done;
  check_bool "streams differ" true (!same < 5)

let test_rng_split_independent () =
  let parent = Sim.Rng.create 3 in
  let child = Sim.Rng.split parent in
  (* The child stream must not replay the parent's continuation. *)
  let p = List.init 20 (fun _ -> Sim.Rng.bits64 parent) in
  let c = List.init 20 (fun _ -> Sim.Rng.bits64 child) in
  check_bool "split independent" true (p <> c)

let test_rng_copy () =
  let a = Sim.Rng.create 9 in
  let b = Sim.Rng.copy a in
  check_float "copy replays" (Sim.Rng.float a) (Sim.Rng.float b)

let test_rng_int_bounds () =
  let rng = Sim.Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int rng 7 in
    check_bool "in range" true (v >= 0 && v < 7)
  done

let test_rng_int_invalid () =
  let rng = Sim.Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Sim.Rng.int rng 0))

let test_rng_shuffle_permutes () =
  let rng = Sim.Rng.create 5 in
  let arr = Array.init 50 Fun.id in
  let orig = Array.copy arr in
  Sim.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same multiset" orig sorted;
  check_bool "actually permuted" true (arr <> orig)

let prop_rng_float_range =
  QCheck.Test.make ~name:"rng float in [0,1)" ~count:100 QCheck.small_int
    (fun seed ->
      let rng = Sim.Rng.create seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let f = Sim.Rng.float rng in
        if f < 0. || f >= 1. then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Dist *)

let mean_of n f =
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. f ()
  done;
  !acc /. float_of_int n

let test_dist_exponential_mean () =
  let rng = Sim.Rng.create 21 in
  let m = mean_of 20_000 (fun () -> Sim.Dist.exponential rng ~mean:2.5) in
  check_float_eps 0.1 "mean ~2.5" 2.5 m

let test_dist_exponential_invalid () =
  let rng = Sim.Rng.create 1 in
  Alcotest.check_raises "bad mean"
    (Invalid_argument "Dist.exponential: mean must be positive") (fun () ->
      ignore (Sim.Dist.exponential rng ~mean:0.))

let test_dist_lognormal_mean_cv () =
  let rng = Sim.Rng.create 22 in
  let m =
    mean_of 50_000 (fun () -> Sim.Dist.lognormal_mean_cv rng ~mean:1.6 ~cv:1.0)
  in
  check_float_eps 0.08 "mean ~1.6" 1.6 m

let test_dist_lognormal_cv_zero () =
  let rng = Sim.Rng.create 23 in
  check_float "degenerate" 3.0 (Sim.Dist.lognormal_mean_cv rng ~mean:3.0 ~cv:0.)

let test_dist_normal_mean () =
  let rng = Sim.Rng.create 24 in
  let m = mean_of 20_000 (fun () -> Sim.Dist.normal rng ~mu:5.0 ~sigma:2.0) in
  check_float_eps 0.1 "mean ~5" 5.0 m

let test_dist_pareto_min () =
  let rng = Sim.Rng.create 25 in
  for _ = 1 to 1000 do
    check_bool "x >= xm" true (Sim.Dist.pareto rng ~xm:2.0 ~alpha:1.5 >= 2.0)
  done

let test_dist_bounded_pareto_cap () =
  let rng = Sim.Rng.create 26 in
  for _ = 1 to 1000 do
    let v = Sim.Dist.bounded_pareto rng ~xm:1.0 ~alpha:0.5 ~cap:10.0 in
    check_bool "capped" true (v <= 10.0)
  done

let test_zipf_bounds () =
  let z = Sim.Dist.Zipf.make ~n:10 ~s:1.0 in
  let rng = Sim.Rng.create 27 in
  for _ = 1 to 1000 do
    let k = Sim.Dist.Zipf.draw z rng in
    check_bool "rank in range" true (k >= 0 && k < 10)
  done

let test_zipf_skew () =
  (* Rank 0 must be sampled more often than rank 9 under s=1. *)
  let z = Sim.Dist.Zipf.make ~n:10 ~s:1.0 in
  let rng = Sim.Rng.create 28 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let k = Sim.Dist.Zipf.draw z rng in
    counts.(k) <- counts.(k) + 1
  done;
  check_bool "rank0 > rank9" true (counts.(0) > 3 * counts.(9))

let test_zipf_uniform_when_s0 () =
  let z = Sim.Dist.Zipf.make ~n:4 ~s:0.0 in
  let rng = Sim.Rng.create 29 in
  let counts = Array.make 4 0 in
  for _ = 1 to 40_000 do
    let k = Sim.Dist.Zipf.draw z rng in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c -> check_bool "roughly uniform" true (c > 8_000 && c < 12_000))
    counts

let test_zipf_size () =
  check_int "size" 17 (Sim.Dist.Zipf.size (Sim.Dist.Zipf.make ~n:17 ~s:0.5))

let test_discrete_weights () =
  let d = Sim.Dist.Discrete.make [| 1.0; 0.0; 3.0 |] in
  let rng = Sim.Rng.create 30 in
  let counts = Array.make 3 0 in
  for _ = 1 to 40_000 do
    let k = Sim.Dist.Discrete.draw d rng in
    counts.(k) <- counts.(k) + 1
  done;
  check_int "zero-weight never drawn" 0 counts.(1);
  check_bool "3x ratio" true
    (float_of_int counts.(2) /. float_of_int counts.(0) > 2.5)

let test_discrete_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Discrete.make: empty weights")
    (fun () -> ignore (Sim.Dist.Discrete.make [||]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Discrete.make: negative weight") (fun () ->
      ignore (Sim.Dist.Discrete.make [| 1.0; -1.0 |]))

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_event_order () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  ignore (Sim.Engine.schedule_at eng 2.0 (fun () -> log := 2 :: !log));
  ignore (Sim.Engine.schedule_at eng 1.0 (fun () -> log := 1 :: !log));
  ignore (Sim.Engine.schedule_at eng 3.0 (fun () -> log := 3 :: !log));
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log)

let test_engine_fifo_same_time () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.Engine.schedule_at eng 1.0 (fun () -> log := i :: !log))
  done;
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_clock_advances () =
  let eng = Sim.Engine.create () in
  let seen = ref 0. in
  ignore (Sim.Engine.schedule_at eng 4.5 (fun () -> seen := Sim.Engine.current_time eng));
  Sim.Engine.run eng;
  check_float "clock at event" 4.5 !seen

let test_engine_past_rejected () =
  let eng = Sim.Engine.create () in
  ignore (Sim.Engine.schedule_at eng 1.0 (fun () ->
      Alcotest.check_raises "past"
        (Invalid_argument "Engine.schedule_at: time 0.5 is in the past (now 1)")
        (fun () -> ignore (Sim.Engine.schedule_at eng 0.5 ignore))));
  Sim.Engine.run eng

let test_engine_cancel () =
  let eng = Sim.Engine.create () in
  let fired = ref false in
  let h = Sim.Engine.schedule_at eng 1.0 (fun () -> fired := true) in
  Sim.Engine.cancel h;
  Sim.Engine.run eng;
  check_bool "cancelled" false !fired

let test_engine_run_until () =
  let eng = Sim.Engine.create () in
  let fired = ref [] in
  ignore (Sim.Engine.schedule_at eng 1.0 (fun () -> fired := 1 :: !fired));
  ignore (Sim.Engine.schedule_at eng 5.0 (fun () -> fired := 5 :: !fired));
  Sim.Engine.run ~until:2.0 eng;
  Alcotest.(check (list int)) "only early" [ 1 ] !fired;
  check_float "clock clamped" 2.0 (Sim.Engine.current_time eng);
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "rest after resume" [ 5; 1 ] !fired

let test_engine_delay_and_now () =
  let eng = Sim.Engine.create () in
  let ts = ref [] in
  Sim.Engine.spawn eng (fun () ->
      ts := Sim.Engine.now () :: !ts;
      Sim.Engine.delay 1.5;
      ts := Sim.Engine.now () :: !ts;
      Sim.Engine.delay 0.5;
      ts := Sim.Engine.now () :: !ts);
  Sim.Engine.run eng;
  Alcotest.(check (list (float 1e-9))) "times" [ 2.0; 1.5; 0.0 ] !ts

let test_engine_spawn_child () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.spawn eng (fun () ->
      Sim.Engine.spawn_child (fun () -> log := "child" :: !log);
      log := "parent" :: !log);
  Sim.Engine.run eng;
  (* Parent continues first; child runs at the same timestamp afterwards. *)
  Alcotest.(check (list string)) "order" [ "parent"; "child" ] (List.rev !log)

let test_engine_yield_interleaves () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.spawn eng (fun () ->
      log := "a1" :: !log;
      Sim.Engine.yield ();
      log := "a2" :: !log);
  Sim.Engine.spawn eng (fun () -> log := "b" :: !log);
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "interleaved" [ "a1"; "b"; "a2" ] (List.rev !log)

let test_engine_not_in_process () =
  Alcotest.check_raises "now outside" Sim.Engine.Not_in_process (fun () ->
      ignore (Sim.Engine.now ()))

let test_engine_negative_delay () =
  let eng = Sim.Engine.create () in
  let raised = ref false in
  Sim.Engine.spawn eng (fun () ->
      try Sim.Engine.delay (-1.) with Invalid_argument _ -> raised := true);
  Sim.Engine.run eng;
  check_bool "negative delay rejected" true !raised

let test_engine_deadlock_detection () =
  let eng = Sim.Engine.create () in
  let mb : int Sim.Mailbox.t = Sim.Mailbox.create () in
  Sim.Engine.spawn eng (fun () -> ignore (Sim.Mailbox.recv mb));
  let raised = ref false in
  (try Sim.Engine.run ~detect_deadlock:true eng
   with Sim.Engine.Deadlock _ -> raised := true);
  check_bool "deadlock detected" true !raised

let test_engine_suspended_count () =
  let eng = Sim.Engine.create () in
  let mb : int Sim.Mailbox.t = Sim.Mailbox.create () in
  Sim.Engine.spawn eng (fun () -> ignore (Sim.Mailbox.recv mb));
  Sim.Engine.run eng;
  check_int "one suspended" 1 (Sim.Engine.suspended eng);
  Sim.Mailbox.send mb 1;
  Sim.Engine.run eng;
  check_int "resumed" 0 (Sim.Engine.suspended eng)

let test_engine_determinism () =
  (* Two identical simulations produce identical event traces. *)
  let run () =
    let eng = Sim.Engine.create () in
    let log = ref [] in
    let rng = Sim.Rng.create 77 in
    for i = 1 to 20 do
      Sim.Engine.spawn eng (fun () ->
          Sim.Engine.delay (Sim.Rng.float rng);
          log := (i, Sim.Engine.now ()) :: !log)
    done;
    Sim.Engine.run eng;
    !log
  in
  check_bool "deterministic" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* Mutex / Rwlock / Semaphore / Condvar / Latch *)

let test_mutex_exclusion () =
  let eng = Sim.Engine.create () in
  let m = Sim.Mutex.create () in
  let inside = ref 0 in
  let max_inside = ref 0 in
  for _ = 1 to 5 do
    Sim.Engine.spawn eng (fun () ->
        Sim.Mutex.lock m;
        incr inside;
        if !inside > !max_inside then max_inside := !inside;
        Sim.Engine.delay 1.0;
        decr inside;
        Sim.Mutex.unlock m)
  done;
  Sim.Engine.run eng;
  check_int "never two inside" 1 !max_inside;
  check_float "serialised" 5.0 (Sim.Engine.current_time eng)

let test_mutex_try_lock () =
  let m = Sim.Mutex.create () in
  check_bool "first" true (Sim.Mutex.try_lock m);
  check_bool "second" false (Sim.Mutex.try_lock m);
  Sim.Mutex.unlock m;
  check_bool "after unlock" true (Sim.Mutex.try_lock m)

let test_mutex_unlock_unlocked () =
  let m = Sim.Mutex.create () in
  Alcotest.check_raises "bad unlock" (Invalid_argument "Mutex.unlock: not locked")
    (fun () -> Sim.Mutex.unlock m)

let test_mutex_with_lock_exn_safe () =
  let eng = Sim.Engine.create () in
  let m = Sim.Mutex.create () in
  Sim.Engine.spawn eng (fun () ->
      (try Sim.Mutex.with_lock m (fun () -> failwith "boom")
       with Failure _ -> ());
      check_bool "released" false (Sim.Mutex.locked m));
  Sim.Engine.run eng

let test_rwlock_readers_share () =
  let eng = Sim.Engine.create () in
  let l = Sim.Rwlock.create () in
  let t_done = ref [] in
  for _ = 1 to 3 do
    Sim.Engine.spawn eng (fun () ->
        Sim.Rwlock.rd_lock l;
        Sim.Engine.delay 1.0;
        Sim.Rwlock.rd_unlock l;
        t_done := Sim.Engine.now () :: !t_done)
  done;
  Sim.Engine.run eng;
  List.iter (fun t -> check_float "parallel readers" 1.0 t) !t_done

let test_rwlock_writer_excludes () =
  let eng = Sim.Engine.create () in
  let l = Sim.Rwlock.create () in
  let log = ref [] in
  Sim.Engine.spawn eng (fun () ->
      Sim.Rwlock.wr_lock l;
      Sim.Engine.delay 1.0;
      Sim.Rwlock.wr_unlock l;
      log := ("w", Sim.Engine.now ()) :: !log);
  Sim.Engine.spawn eng (fun () ->
      Sim.Rwlock.rd_lock l;
      log := ("r", Sim.Engine.now ()) :: !log;
      Sim.Rwlock.rd_unlock l);
  Sim.Engine.run eng;
  Alcotest.(check (list (pair string (float 1e-9))))
    "reader waits for writer"
    [ ("w", 1.0); ("r", 1.0) ]
    (List.rev !log)

let test_rwlock_fifo_no_starvation () =
  (* reader holds; writer queues; new reader queues behind writer. *)
  let eng = Sim.Engine.create () in
  let l = Sim.Rwlock.create () in
  let log = ref [] in
  Sim.Engine.spawn eng (fun () ->
      Sim.Rwlock.rd_lock l;
      Sim.Engine.delay 1.0;
      Sim.Rwlock.rd_unlock l);
  Sim.Engine.spawn eng (fun () ->
      Sim.Engine.delay 0.1;
      Sim.Rwlock.wr_lock l;
      log := ("w", Sim.Engine.now ()) :: !log;
      Sim.Engine.delay 1.0;
      Sim.Rwlock.wr_unlock l);
  Sim.Engine.spawn eng (fun () ->
      Sim.Engine.delay 0.2;
      Sim.Rwlock.rd_lock l;
      log := ("r2", Sim.Engine.now ()) :: !log;
      Sim.Rwlock.rd_unlock l);
  Sim.Engine.run eng;
  Alcotest.(check (list (pair string (float 1e-9))))
    "writer admitted before late reader"
    [ ("w", 1.0); ("r2", 2.0) ]
    (List.rev !log)

let test_rwlock_counters () =
  let eng = Sim.Engine.create () in
  let l = Sim.Rwlock.create () in
  Sim.Engine.spawn eng (fun () ->
      Sim.Rwlock.with_rd l ignore;
      Sim.Rwlock.with_rd l ignore;
      Sim.Rwlock.with_wr l ignore);
  Sim.Engine.run eng;
  check_int "rd count" 2 (Sim.Rwlock.rd_acquisitions l);
  check_int "wr count" 1 (Sim.Rwlock.wr_acquisitions l)

let test_semaphore_limits () =
  let eng = Sim.Engine.create () in
  let s = Sim.Semaphore.create 2 in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 6 do
    Sim.Engine.spawn eng (fun () ->
        Sim.Semaphore.with_permit s (fun () ->
            incr inside;
            if !inside > !max_inside then max_inside := !inside;
            Sim.Engine.delay 1.0;
            decr inside))
  done;
  Sim.Engine.run eng;
  check_int "at most 2" 2 !max_inside;
  check_float "three waves" 3.0 (Sim.Engine.current_time eng)

let test_semaphore_try () =
  let s = Sim.Semaphore.create 1 in
  check_bool "take" true (Sim.Semaphore.try_acquire s);
  check_bool "exhausted" false (Sim.Semaphore.try_acquire s);
  Sim.Semaphore.release s;
  check_int "back to one" 1 (Sim.Semaphore.available s)

let test_condvar_signal () =
  let eng = Sim.Engine.create () in
  let m = Sim.Mutex.create () in
  let c = Sim.Condvar.create () in
  let woken = ref (-1.) in
  Sim.Engine.spawn eng (fun () ->
      Sim.Mutex.lock m;
      Sim.Condvar.wait c m;
      woken := Sim.Engine.now ();
      Sim.Mutex.unlock m);
  Sim.Engine.spawn eng (fun () ->
      Sim.Engine.delay 2.0;
      Sim.Condvar.signal c);
  Sim.Engine.run eng;
  check_float "woken at signal" 2.0 !woken

let test_condvar_broadcast () =
  let eng = Sim.Engine.create () in
  let m = Sim.Mutex.create () in
  let c = Sim.Condvar.create () in
  let woken = ref 0 in
  for _ = 1 to 4 do
    Sim.Engine.spawn eng (fun () ->
        Sim.Mutex.lock m;
        Sim.Condvar.wait c m;
        incr woken;
        Sim.Mutex.unlock m)
  done;
  Sim.Engine.spawn eng (fun () ->
      Sim.Engine.delay 1.0;
      Sim.Condvar.broadcast c);
  Sim.Engine.run eng;
  check_int "all woken" 4 !woken

let test_latch () =
  let eng = Sim.Engine.create () in
  let l = Sim.Latch.create 3 in
  let released = ref (-1.) in
  Sim.Engine.spawn eng (fun () ->
      Sim.Latch.wait l;
      released := Sim.Engine.now ());
  for i = 1 to 3 do
    Sim.Engine.spawn eng (fun () ->
        Sim.Engine.delay (float_of_int i);
        Sim.Latch.arrive l)
  done;
  Sim.Engine.run eng;
  check_float "released at last arrive" 3.0 !released;
  check_int "zero remaining" 0 (Sim.Latch.remaining l)

let test_latch_zero_immediate () =
  let eng = Sim.Engine.create () in
  let l = Sim.Latch.create 0 in
  let passed = ref false in
  Sim.Engine.spawn eng (fun () ->
      Sim.Latch.wait l;
      passed := true);
  Sim.Engine.run eng;
  check_bool "no block" true !passed

let test_latch_extra_arrive () =
  let l = Sim.Latch.create 1 in
  Sim.Latch.arrive l;
  Alcotest.check_raises "extra" (Invalid_argument "Latch.arrive: already at zero")
    (fun () -> Sim.Latch.arrive l)

(* ------------------------------------------------------------------ *)
(* Mailbox *)

let test_mailbox_fifo () =
  let eng = Sim.Engine.create () in
  let mb = Sim.Mailbox.create () in
  let got = ref [] in
  Sim.Engine.spawn eng (fun () ->
      for _ = 1 to 3 do
        got := Sim.Mailbox.recv mb :: !got
      done);
  Sim.Engine.spawn eng (fun () ->
      Sim.Mailbox.send mb 1;
      Sim.Mailbox.send mb 2;
      Sim.Mailbox.send mb 3);
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_blocking_recv () =
  let eng = Sim.Engine.create () in
  let mb = Sim.Mailbox.create () in
  let got_at = ref (-1.) in
  Sim.Engine.spawn eng (fun () ->
      ignore (Sim.Mailbox.recv mb);
      got_at := Sim.Engine.now ());
  Sim.Engine.spawn eng (fun () ->
      Sim.Engine.delay 3.0;
      Sim.Mailbox.send mb 42);
  Sim.Engine.run eng;
  check_float "received when sent" 3.0 !got_at

let test_mailbox_receivers_fifo () =
  let eng = Sim.Engine.create () in
  let mb = Sim.Mailbox.create () in
  let got = ref [] in
  for i = 1 to 3 do
    Sim.Engine.spawn eng (fun () ->
        let v = Sim.Mailbox.recv mb in
        got := (i, v) :: !got)
  done;
  Sim.Engine.spawn eng (fun () ->
      Sim.Engine.delay 1.0;
      Sim.Mailbox.send mb "a";
      Sim.Mailbox.send mb "b";
      Sim.Mailbox.send mb "c");
  Sim.Engine.run eng;
  Alcotest.(check (list (pair int string)))
    "earliest receiver first"
    [ (1, "a"); (2, "b"); (3, "c") ]
    (List.rev !got)

let test_mailbox_try_recv () =
  let mb = Sim.Mailbox.create () in
  Alcotest.(check (option int)) "empty" None (Sim.Mailbox.try_recv mb);
  Sim.Mailbox.send mb 5;
  Alcotest.(check (option int)) "one" (Some 5) (Sim.Mailbox.try_recv mb);
  check_int "drained" 0 (Sim.Mailbox.length mb)

let test_mailbox_recv_timeout_expires () =
  let eng = Sim.Engine.create () in
  let mb : int Sim.Mailbox.t = Sim.Mailbox.create () in
  let got = ref (Some 99) in
  let at = ref 0. in
  Sim.Engine.spawn eng (fun () ->
      got := Sim.Mailbox.recv_timeout mb ~timeout:2.0;
      at := Sim.Engine.now ());
  Sim.Engine.run eng;
  Alcotest.(check (option int)) "timed out" None !got;
  check_float "at deadline" 2.0 !at

let test_mailbox_recv_timeout_delivers () =
  let eng = Sim.Engine.create () in
  let mb = Sim.Mailbox.create () in
  let got = ref None in
  Sim.Engine.spawn eng (fun () -> got := Sim.Mailbox.recv_timeout mb ~timeout:5.0);
  Sim.Engine.spawn eng (fun () ->
      Sim.Engine.delay 1.0;
      Sim.Mailbox.send mb 7);
  Sim.Engine.run eng;
  Alcotest.(check (option int)) "delivered in time" (Some 7) !got

let test_mailbox_recv_timeout_immediate () =
  let eng = Sim.Engine.create () in
  let mb = Sim.Mailbox.create () in
  Sim.Mailbox.send mb 3;
  let got = ref None in
  Sim.Engine.spawn eng (fun () -> got := Sim.Mailbox.recv_timeout mb ~timeout:0.5);
  Sim.Engine.run eng;
  Alcotest.(check (option int)) "already queued" (Some 3) !got

let test_mailbox_timed_out_waiter_skipped () =
  (* A message sent after a waiter timed out must go to the next receiver
     (or the queue), never to the dead waiter. *)
  let eng = Sim.Engine.create () in
  let mb = Sim.Mailbox.create () in
  let late = ref None in
  Sim.Engine.spawn eng (fun () ->
      ignore (Sim.Mailbox.recv_timeout mb ~timeout:1.0));
  Sim.Engine.spawn eng (fun () ->
      Sim.Engine.delay 2.0;
      Sim.Mailbox.send mb 42;
      late := Sim.Mailbox.try_recv mb);
  Sim.Engine.run eng;
  Alcotest.(check (option int)) "message queued, not swallowed" (Some 42) !late

let test_mailbox_timeout_then_normal_recv () =
  let eng = Sim.Engine.create () in
  let mb = Sim.Mailbox.create () in
  let got = ref 0 in
  Sim.Engine.spawn eng (fun () ->
      ignore (Sim.Mailbox.recv_timeout mb ~timeout:0.5);
      got := Sim.Mailbox.recv mb);
  Sim.Engine.spawn eng (fun () ->
      Sim.Engine.delay 1.0;
      Sim.Mailbox.send mb 8);
  Sim.Engine.run eng;
  check_int "second recv gets it" 8 !got

(* ------------------------------------------------------------------ *)
(* Cpu (processor sharing) *)

let run_jobs_at ~cores jobs =
  (* jobs: (start_time, demand); returns completion times in job order. *)
  let eng = Sim.Engine.create () in
  let cpu = Sim.Cpu.create eng ~cores in
  let finish = Array.make (List.length jobs) 0. in
  List.iteri
    (fun i (start, demand) ->
      Sim.Engine.spawn eng (fun () ->
          Sim.Engine.delay start;
          Sim.Cpu.consume cpu demand;
          finish.(i) <- Sim.Engine.now ()))
    jobs;
  Sim.Engine.run eng;
  finish

let test_cpu_single_job () =
  let f = run_jobs_at ~cores:1 [ (0., 1.0) ] in
  check_float "solo job" 1.0 f.(0)

let test_cpu_two_jobs_share () =
  let f = run_jobs_at ~cores:1 [ (0., 1.0); (0., 1.0) ] in
  check_float "both at 2" 2.0 f.(0);
  check_float "both at 2" 2.0 f.(1)

let test_cpu_staggered_arrival () =
  (* Job A (2s) alone for 1s, then shares. A has 1s left at t=1, shared ->
     finishes at t=3. B (1s demand) shares from 1: also finishes at 3. *)
  let f = run_jobs_at ~cores:1 [ (0., 2.0); (1., 1.0) ] in
  check_float "A" 3.0 f.(0);
  check_float "B" 3.0 f.(1)

let test_cpu_short_job_departs () =
  (* A: 2s, B: 0.5s. Shared until B served 0.5 at t=1; A then has 1.5s
     left alone -> finishes at 2.5. *)
  let f = run_jobs_at ~cores:1 [ (0., 2.0); (0., 0.5) ] in
  check_float "B departs" 1.0 f.(1);
  check_float "A finishes" 2.5 f.(0)

let test_cpu_multicore_no_contention () =
  let f = run_jobs_at ~cores:2 [ (0., 1.0); (0., 1.0) ] in
  check_float "parallel" 1.0 f.(0);
  check_float "parallel" 1.0 f.(1)

let test_cpu_multicore_three_on_two () =
  (* 3 jobs of 1s on 2 cores: rate 2/3 each; all finish at 1.5. *)
  let f = run_jobs_at ~cores:2 [ (0., 1.0); (0., 1.0); (0., 1.0) ] in
  Array.iter (fun t -> check_float "3 on 2" 1.5 t) f

let test_cpu_speed () =
  let eng = Sim.Engine.create () in
  let cpu = Sim.Cpu.create ~speed:2.0 eng ~cores:1 in
  let t = ref 0. in
  Sim.Engine.spawn eng (fun () ->
      Sim.Cpu.consume cpu 1.0;
      t := Sim.Engine.now ());
  Sim.Engine.run eng;
  check_float "double speed halves time" 0.5 !t

let test_cpu_zero_demand () =
  let eng = Sim.Engine.create () in
  let cpu = Sim.Cpu.create eng ~cores:1 in
  let t = ref (-1.) in
  Sim.Engine.spawn eng (fun () ->
      Sim.Cpu.consume cpu 0.;
      t := Sim.Engine.now ());
  Sim.Engine.run eng;
  check_float "immediate" 0.0 !t

let test_cpu_busy_time () =
  let eng = Sim.Engine.create () in
  let cpu = Sim.Cpu.create eng ~cores:1 in
  Sim.Engine.spawn eng (fun () -> Sim.Cpu.consume cpu 1.0);
  Sim.Engine.spawn eng (fun () -> Sim.Cpu.consume cpu 0.5);
  Sim.Engine.run eng;
  check_float_eps 1e-9 "work conserved" 1.5 (Sim.Cpu.busy_time cpu);
  check_int "completed" 2 (Sim.Cpu.completed cpu)

let prop_cpu_work_conservation =
  QCheck.Test.make ~name:"PS cpu conserves work" ~count:50
    QCheck.(list_of_size Gen.(1 -- 8) (pair (float_bound_exclusive 2.0) (float_bound_exclusive 3.0)))
    (fun jobs ->
      QCheck.assume (jobs <> []);
      let jobs = List.map (fun (s, d) -> (Float.abs s, Float.abs d +. 0.001)) jobs in
      let eng = Sim.Engine.create () in
      let cpu = Sim.Cpu.create eng ~cores:1 in
      List.iter
        (fun (s, d) ->
          Sim.Engine.spawn eng (fun () ->
              Sim.Engine.delay s;
              Sim.Cpu.consume cpu d))
        jobs;
      Sim.Engine.run eng;
      let total = List.fold_left (fun acc (_, d) -> acc +. d) 0. jobs in
      Float.abs (Sim.Cpu.busy_time cpu -. total) < 1e-6
      && Sim.Cpu.completed cpu = List.length jobs)

let prop_cpu_finish_not_before_demand =
  QCheck.Test.make ~name:"PS job never finishes before its solo time" ~count:50
    QCheck.(list_of_size Gen.(1 -- 6) (float_bound_exclusive 2.0))
    (fun demands ->
      QCheck.assume (demands <> []);
      let demands = List.map (fun d -> d +. 0.01) demands in
      let eng = Sim.Engine.create () in
      let cpu = Sim.Cpu.create eng ~cores:1 in
      let ok = ref true in
      List.iter
        (fun d ->
          Sim.Engine.spawn eng (fun () ->
              Sim.Cpu.consume cpu d;
              if Sim.Engine.now () < d -. 1e-9 then ok := false))
        demands;
      Sim.Engine.run eng;
      !ok)

(* ------------------------------------------------------------------ *)
(* Disk and Net *)

let test_disk_cached_vs_uncached () =
  let eng = Sim.Engine.create () in
  let disk = Sim.Disk.create eng in
  let t_cached = ref 0. and t_cold = ref 0. in
  Sim.Engine.spawn eng (fun () ->
      Sim.Disk.read disk ~bytes:80_000 ~cached:true;
      t_cached := Sim.Engine.now ();
      Sim.Disk.read disk ~bytes:80_000 ~cached:false;
      t_cold := Sim.Engine.now () -. !t_cached);
  Sim.Engine.run eng;
  check_float "cached = bytes/mem_bw" 0.001 !t_cached;
  check_float "cold = seek + bytes/bw" 0.018 !t_cold

let test_disk_serialises () =
  let eng = Sim.Engine.create () in
  let disk = Sim.Disk.create ~seek:0.01 ~bandwidth:1e6 eng in
  let finish = ref [] in
  for _ = 1 to 2 do
    Sim.Engine.spawn eng (fun () ->
        Sim.Disk.read disk ~bytes:10_000 ~cached:false;
        finish := Sim.Engine.now () :: !finish)
  done;
  Sim.Engine.run eng;
  Alcotest.(check (list (float 1e-9))) "one at a time" [ 0.04; 0.02 ] !finish

let test_net_transfer_time () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create ~latency:0.001 ~bandwidth:1e6 eng ~n_endpoints:2 in
  let t = ref 0. in
  Sim.Engine.spawn eng (fun () ->
      Sim.Net.transfer net ~src:0 ~dst:1 ~bytes:1000;
      t := Sim.Engine.now ());
  Sim.Engine.run eng;
  check_float "tx + latency" 0.002 !t

let test_net_same_endpoint_free () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create ~latency:0.001 ~bandwidth:1e6 eng ~n_endpoints:2 in
  let t = ref (-1.) in
  Sim.Engine.spawn eng (fun () ->
      Sim.Net.transfer net ~src:0 ~dst:0 ~bytes:1_000_000;
      t := Sim.Engine.now ());
  Sim.Engine.run eng;
  check_float "loopback instantaneous" 0.0 !t

let test_net_send_delivers () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create ~latency:0.01 ~bandwidth:1e6 eng ~n_endpoints:2 in
  let mb = Sim.Mailbox.create () in
  let got_at = ref 0. in
  Sim.Engine.spawn eng (fun () ->
      ignore (Sim.Mailbox.recv mb);
      got_at := Sim.Engine.now ());
  Sim.Engine.spawn eng (fun () -> Sim.Net.send net ~src:0 ~dst:1 ~bytes:10_000 mb "msg");
  Sim.Engine.run eng;
  check_float "tx(0.01) + latency(0.01)" 0.02 !got_at;
  check_int "accounted" 1 (Sim.Net.messages_sent net);
  check_int "bytes" 10_000 (Sim.Net.bytes_sent net)

let test_net_nic_serialises_sends () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create ~latency:0. ~bandwidth:1e6 eng ~n_endpoints:3 in
  let mb1 = Sim.Mailbox.create () and mb2 = Sim.Mailbox.create () in
  let sent_done = ref 0. in
  Sim.Engine.spawn eng (fun () ->
      Sim.Net.send net ~src:0 ~dst:1 ~bytes:1_000_000 mb1 ();
      Sim.Net.send net ~src:0 ~dst:2 ~bytes:1_000_000 mb2 ();
      sent_done := Sim.Engine.now ());
  Sim.Engine.run eng;
  check_float "two transmissions back to back" 2.0 !sent_done

let test_net_loss_drops_everything () =
  let eng = Sim.Engine.create () in
  let net =
    Sim.Net.create ~loss:1.0 ~rng:(Sim.Rng.create 1) eng ~n_endpoints:2
  in
  let mb = Sim.Mailbox.create () in
  Sim.Engine.spawn eng (fun () -> Sim.Net.send net ~src:0 ~dst:1 ~bytes:10 mb ());
  Sim.Net.post net ~src:0 ~dst:1 ~bytes:10 mb ();
  Sim.Engine.run eng;
  check_int "nothing delivered" 0 (Sim.Mailbox.length mb);
  check_int "two drops" 2 (Sim.Net.messages_lost net)

let test_net_loss_zero_is_lossless () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng ~n_endpoints:2 in
  let mb = Sim.Mailbox.create () in
  for _ = 1 to 20 do
    Sim.Net.post net ~src:0 ~dst:1 ~bytes:10 mb ()
  done;
  Sim.Engine.run eng;
  check_int "all delivered" 20 (Sim.Mailbox.length mb);
  check_int "no drops" 0 (Sim.Net.messages_lost net)

let test_net_loss_partial () =
  let eng = Sim.Engine.create () in
  let net =
    Sim.Net.create ~loss:0.5 ~rng:(Sim.Rng.create 5) eng ~n_endpoints:2
  in
  let mb = Sim.Mailbox.create () in
  for _ = 1 to 1000 do
    Sim.Net.post net ~src:0 ~dst:1 ~bytes:10 mb ()
  done;
  Sim.Engine.run eng;
  let delivered = Sim.Mailbox.length mb in
  check_bool "about half" true (delivered > 400 && delivered < 600);
  check_int "accounting consistent" 1000 (delivered + Sim.Net.messages_lost net)

let test_net_loss_needs_rng () =
  let eng = Sim.Engine.create () in
  Alcotest.check_raises "rng required"
    (Invalid_argument "Net.create: positive loss needs an rng") (fun () ->
      ignore (Sim.Net.create ~loss:0.5 eng ~n_endpoints:1))

let test_net_transfer_never_drops () =
  let eng = Sim.Engine.create () in
  let net =
    Sim.Net.create ~loss:1.0 ~rng:(Sim.Rng.create 1) eng ~n_endpoints:2
  in
  let completed = ref false in
  Sim.Engine.spawn eng (fun () ->
      Sim.Net.transfer net ~src:0 ~dst:1 ~bytes:1000;
      completed := true);
  Sim.Engine.run eng;
  check_bool "stream transfer reliable" true !completed

let test_net_endpoint_range () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng ~n_endpoints:2 in
  let raised = ref false in
  Sim.Engine.spawn eng (fun () ->
      try Sim.Net.transfer net ~src:0 ~dst:5 ~bytes:1
      with Invalid_argument _ -> raised := true);
  Sim.Engine.run eng;
  check_bool "range checked" true !raised

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "sim"
    [
      ( "pqueue",
        [
          Alcotest.test_case "drains in sorted order" `Quick test_pqueue_order;
          Alcotest.test_case "empty behaviour" `Quick test_pqueue_empty;
          Alcotest.test_case "peek does not remove" `Quick test_pqueue_peek_stable;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
        ] );
      qsuite "pqueue-props" [ prop_pqueue_sorts ];
      ( "rng",
        [
          Alcotest.test_case "deterministic per seed" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy replays" `Quick test_rng_copy;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects bad bound" `Quick test_rng_int_invalid;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      qsuite "rng-props" [ prop_rng_float_range ];
      ( "dist",
        [
          Alcotest.test_case "exponential mean" `Quick test_dist_exponential_mean;
          Alcotest.test_case "exponential validation" `Quick test_dist_exponential_invalid;
          Alcotest.test_case "lognormal mean/cv" `Quick test_dist_lognormal_mean_cv;
          Alcotest.test_case "lognormal cv=0 degenerate" `Quick test_dist_lognormal_cv_zero;
          Alcotest.test_case "normal mean" `Quick test_dist_normal_mean;
          Alcotest.test_case "pareto lower bound" `Quick test_dist_pareto_min;
          Alcotest.test_case "bounded pareto cap" `Quick test_dist_bounded_pareto_cap;
          Alcotest.test_case "zipf in range" `Quick test_zipf_bounds;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "zipf s=0 uniform" `Quick test_zipf_uniform_when_s0;
          Alcotest.test_case "zipf size" `Quick test_zipf_size;
          Alcotest.test_case "discrete weights" `Quick test_discrete_weights;
          Alcotest.test_case "discrete validation" `Quick test_discrete_invalid;
        ] );
      ( "engine",
        [
          Alcotest.test_case "events fire in time order" `Quick test_engine_event_order;
          Alcotest.test_case "same-time events FIFO" `Quick test_engine_fifo_same_time;
          Alcotest.test_case "clock advances to event time" `Quick test_engine_clock_advances;
          Alcotest.test_case "past scheduling rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run ~until pauses and resumes" `Quick test_engine_run_until;
          Alcotest.test_case "delay advances process time" `Quick test_engine_delay_and_now;
          Alcotest.test_case "spawn_child runs after parent" `Quick test_engine_spawn_child;
          Alcotest.test_case "yield interleaves" `Quick test_engine_yield_interleaves;
          Alcotest.test_case "process ops outside process raise" `Quick test_engine_not_in_process;
          Alcotest.test_case "negative delay rejected" `Quick test_engine_negative_delay;
          Alcotest.test_case "deadlock detection" `Quick test_engine_deadlock_detection;
          Alcotest.test_case "suspended count" `Quick test_engine_suspended_count;
          Alcotest.test_case "bit-determinism" `Quick test_engine_determinism;
        ] );
      ( "mutex",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_mutex_exclusion;
          Alcotest.test_case "try_lock" `Quick test_mutex_try_lock;
          Alcotest.test_case "unlock unlocked raises" `Quick test_mutex_unlock_unlocked;
          Alcotest.test_case "with_lock releases on exception" `Quick test_mutex_with_lock_exn_safe;
        ] );
      ( "rwlock",
        [
          Alcotest.test_case "readers share" `Quick test_rwlock_readers_share;
          Alcotest.test_case "writer excludes" `Quick test_rwlock_writer_excludes;
          Alcotest.test_case "FIFO fairness" `Quick test_rwlock_fifo_no_starvation;
          Alcotest.test_case "acquisition counters" `Quick test_rwlock_counters;
        ] );
      ( "semaphore",
        [
          Alcotest.test_case "limits concurrency" `Quick test_semaphore_limits;
          Alcotest.test_case "try_acquire" `Quick test_semaphore_try;
        ] );
      ( "condvar",
        [
          Alcotest.test_case "signal wakes one" `Quick test_condvar_signal;
          Alcotest.test_case "broadcast wakes all" `Quick test_condvar_broadcast;
        ] );
      ( "latch",
        [
          Alcotest.test_case "releases at zero" `Quick test_latch;
          Alcotest.test_case "zero count immediate" `Quick test_latch_zero_immediate;
          Alcotest.test_case "extra arrive raises" `Quick test_latch_extra_arrive;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "FIFO messages" `Quick test_mailbox_fifo;
          Alcotest.test_case "recv blocks until send" `Quick test_mailbox_blocking_recv;
          Alcotest.test_case "receivers served FIFO" `Quick test_mailbox_receivers_fifo;
          Alcotest.test_case "try_recv" `Quick test_mailbox_try_recv;
          Alcotest.test_case "recv_timeout expires" `Quick
            test_mailbox_recv_timeout_expires;
          Alcotest.test_case "recv_timeout delivers in time" `Quick
            test_mailbox_recv_timeout_delivers;
          Alcotest.test_case "recv_timeout immediate" `Quick
            test_mailbox_recv_timeout_immediate;
          Alcotest.test_case "timed-out waiter skipped" `Quick
            test_mailbox_timed_out_waiter_skipped;
          Alcotest.test_case "timeout then normal recv" `Quick
            test_mailbox_timeout_then_normal_recv;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "single job runs at speed" `Quick test_cpu_single_job;
          Alcotest.test_case "two jobs share equally" `Quick test_cpu_two_jobs_share;
          Alcotest.test_case "staggered arrivals" `Quick test_cpu_staggered_arrival;
          Alcotest.test_case "short job departs, rate recovers" `Quick test_cpu_short_job_departs;
          Alcotest.test_case "multicore no contention" `Quick test_cpu_multicore_no_contention;
          Alcotest.test_case "three jobs on two cores" `Quick test_cpu_multicore_three_on_two;
          Alcotest.test_case "speed scales" `Quick test_cpu_speed;
          Alcotest.test_case "zero demand yields" `Quick test_cpu_zero_demand;
          Alcotest.test_case "busy time accounting" `Quick test_cpu_busy_time;
        ] );
      qsuite "cpu-props" [ prop_cpu_work_conservation; prop_cpu_finish_not_before_demand ];
      ( "disk",
        [
          Alcotest.test_case "cached vs uncached cost" `Quick test_disk_cached_vs_uncached;
          Alcotest.test_case "uncached reads serialise" `Quick test_disk_serialises;
        ] );
      ( "net",
        [
          Alcotest.test_case "transfer time" `Quick test_net_transfer_time;
          Alcotest.test_case "loopback free" `Quick test_net_same_endpoint_free;
          Alcotest.test_case "send delivers after tx+latency" `Quick test_net_send_delivers;
          Alcotest.test_case "NIC serialises sends" `Quick test_net_nic_serialises_sends;
          Alcotest.test_case "endpoint range checked" `Quick test_net_endpoint_range;
          Alcotest.test_case "loss=1 drops everything" `Quick
            test_net_loss_drops_everything;
          Alcotest.test_case "loss=0 lossless" `Quick test_net_loss_zero_is_lossless;
          Alcotest.test_case "partial loss" `Quick test_net_loss_partial;
          Alcotest.test_case "loss needs rng" `Quick test_net_loss_needs_rng;
          Alcotest.test_case "transfers never drop" `Quick
            test_net_transfer_never_drops;
        ] );
    ]
