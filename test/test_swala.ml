(* Tests for the Swala core: configuration and single/multi-node server
   behaviour (Figure 2's control flow, daemons, counters). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_default_valid () =
  Swala.Config.validate Swala.Config.default

let test_config_make_overrides () =
  let cfg = Swala.Config.make ~n_nodes:4 ~cache_capacity:20 () in
  check_int "nodes" 4 cfg.Swala.Config.n_nodes;
  check_int "capacity" 20 cfg.Swala.Config.cache_capacity;
  (* untouched fields keep defaults *)
  check_int "threads" 16 cfg.Swala.Config.threads_per_node

let test_config_validation () =
  let inv cfg = try Swala.Config.validate cfg; false with Invalid_argument _ -> true in
  check_bool "nodes" true (inv (Swala.Config.make ~n_nodes:0 ()));
  check_bool "threads" true (inv (Swala.Config.make ~threads_per_node:0 ()));
  check_bool "capacity" true (inv (Swala.Config.make ~cache_capacity:0 ()));
  check_bool "threshold" true (inv (Swala.Config.make ~cache_threshold:(-1.) ()));
  check_bool "ttl" true (inv (Swala.Config.make ~default_ttl:(Some 0.) ()));
  check_bool "fs cache" true (inv (Swala.Config.make ~fs_cache_hit:1.5 ()))

let test_config_mode_names () =
  check_string "disabled" "no-cache"
    (Swala.Config.cache_mode_to_string Swala.Config.Disabled);
  check_string "standalone" "standalone"
    (Swala.Config.cache_mode_to_string Swala.Config.Standalone);
  check_string "coop" "cooperative"
    (Swala.Config.cache_mode_to_string Swala.Config.Cooperative)

let test_config_models_distinct () =
  check_bool "httpd forks" true
    (Swala.Config.httpd_model.Swala.Config.per_request_fork > 0.);
  check_bool "swala does not" true
    (Swala.Config.swala_model.Swala.Config.per_request_fork = 0.);
  check_bool "enterprise slower cgi" true
    (Swala.Config.enterprise_model.Swala.Config.cgi_overhead_factor
    > Swala.Config.swala_model.Swala.Config.cgi_overhead_factor)

(* ------------------------------------------------------------------ *)
(* Server harness *)

let make_registry () =
  let r = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts r;
  Workload.Webstone.register_files r;
  Cgi.Registry.register r
    (Cgi.Script.make ~name:"/cgi-bin/fast"
       (Cgi.Cost.make ~fork_exec:0.01 ~output_bytes:256 (Cgi.Cost.Fixed 0.5)));
  Cgi.Registry.register r
    (Cgi.Script.make ~cacheable:false ~name:"/cgi-bin/personal"
       (Cgi.Cost.make (Cgi.Cost.Fixed 0.5)));
  Cgi.Registry.register r
    (Cgi.Script.make ~ttl:(Some 2.0) ~name:"/cgi-bin/ttl"
       (Cgi.Cost.make (Cgi.Cost.Fixed 0.5)));
  r

(* Run [script] inside a fresh cluster; returns the cluster after the
   simulation drains. *)
let with_cluster ?(cfg = Swala.Config.make ()) script =
  let eng = Sim.Engine.create () in
  let registry = make_registry () in
  let cluster =
    Swala.Server.create_cluster eng cfg ~registry
      ~n_client_endpoints:4
  in
  Swala.Server.start cluster;
  Sim.Engine.spawn eng (fun () ->
      script cluster;
      Swala.Server.stop cluster);
  Sim.Engine.run eng;
  cluster

let client_of cluster i = Swala.Server.n_nodes cluster + i
let get cluster k = Metrics.Counter.get (Swala.Server.merged_counters cluster) k

let submit0 cluster target =
  Swala.Server.submit cluster ~client:(client_of cluster 0) ~node:0
    (Http.Request.get target)

(* ------------------------------------------------------------------ *)
(* Single-node behaviour *)

let test_server_file_fetch () =
  let cluster =
    with_cluster (fun cluster ->
        let resp = submit0 cluster "/files/doc-5k.html" in
        check_int "200" 200 (Http.Status.code resp.Http.Response.status);
        Alcotest.(check (option int)) "declared size" (Some 5000)
          (Http.Headers.content_length resp.Http.Response.headers))
  in
  check_int "file counted" 1 (get cluster Swala.Server.K.file_fetches)

let test_server_404 () =
  let cluster =
    with_cluster (fun cluster ->
        let resp = submit0 cluster "/no/such/path" in
        check_int "404" 404 (Http.Status.code resp.Http.Response.status))
  in
  check_int "counted" 1 (get cluster Swala.Server.K.not_found)

let test_server_cgi_exec_and_cache_hit () =
  let cluster =
    with_cluster (fun cluster ->
        let r1 = submit0 cluster "/cgi-bin/fast?q=1" in
        let r2 = submit0 cluster "/cgi-bin/fast?q=1" in
        check_int "200" 200 (Http.Status.code r1.Http.Response.status);
        check_string "cached body identical" r1.Http.Response.body
          r2.Http.Response.body)
  in
  check_int "one exec" 1 (get cluster Swala.Server.K.cgi_execs);
  check_int "one local hit" 1 (get cluster Swala.Server.K.hit_local);
  check_int "one insert" 1 (get cluster Swala.Server.K.inserts)

let test_server_cache_disabled_always_execs () =
  let cluster =
    with_cluster ~cfg:(Swala.Config.make ~cache_mode:Swala.Config.Disabled ())
      (fun cluster ->
        ignore (submit0 cluster "/cgi-bin/fast?q=1");
        ignore (submit0 cluster "/cgi-bin/fast?q=1"))
  in
  check_int "both executed" 2 (get cluster Swala.Server.K.cgi_execs);
  check_int "no hits" 0 (get cluster Swala.Server.K.hit_local);
  check_int "no inserts" 0 (get cluster Swala.Server.K.inserts)

let test_server_uncacheable_script () =
  let cluster =
    with_cluster (fun cluster ->
        ignore (submit0 cluster "/cgi-bin/personal?u=alice");
        ignore (submit0 cluster "/cgi-bin/personal?u=alice"))
  in
  check_int "both executed" 2 (get cluster Swala.Server.K.cgi_execs);
  check_int "flagged uncacheable" 2 (get cluster Swala.Server.K.uncacheable);
  check_int "never inserted" 0 (get cluster Swala.Server.K.inserts)

let test_server_post_not_cached () =
  let cluster =
    with_cluster (fun cluster ->
        let req = Http.Request.make Http.Meth.Post "/cgi-bin/fast?q=1" in
        ignore (Swala.Server.submit cluster ~client:(client_of cluster 0) ~node:0 req);
        ignore (Swala.Server.submit cluster ~client:(client_of cluster 0) ~node:0 req))
  in
  check_int "both executed" 2 (get cluster Swala.Server.K.cgi_execs);
  check_int "uncacheable" 2 (get cluster Swala.Server.K.uncacheable)

let test_server_threshold_rejects_fast_cgi () =
  let cfg = Swala.Config.make ~cache_threshold:10.0 () in
  let cluster =
    with_cluster ~cfg (fun cluster ->
        ignore (submit0 cluster "/cgi-bin/fast?q=1");
        ignore (submit0 cluster "/cgi-bin/fast?q=1"))
  in
  check_int "never cached" 0 (get cluster Swala.Server.K.inserts);
  check_int "below threshold" 2 (get cluster Swala.Server.K.below_threshold);
  check_int "both executed" 2 (get cluster Swala.Server.K.cgi_execs)

let test_server_capacity_eviction_on_node () =
  let cfg = Swala.Config.make ~cache_capacity:2 () in
  let cluster =
    with_cluster ~cfg (fun cluster ->
        ignore (submit0 cluster "/cgi-bin/fast?q=1");
        ignore (submit0 cluster "/cgi-bin/fast?q=2");
        ignore (submit0 cluster "/cgi-bin/fast?q=3");
        (* q=1 was evicted (LRU): asking again re-executes *)
        ignore (submit0 cluster "/cgi-bin/fast?q=1"))
  in
  check_int "four executions" 4 (get cluster Swala.Server.K.cgi_execs);
  let store = Swala.Server.node_store (Swala.Server.node cluster 0) in
  check_int "bounded" 2 (Cache.Store.length store)

let test_server_ttl_expiry_end_to_end () =
  let cluster =
    with_cluster (fun cluster ->
        ignore (submit0 cluster "/cgi-bin/ttl?q=1");
        (* TTL is 2s: within it, hit; after it, re-exec. *)
        Sim.Engine.delay 1.0;
        ignore (submit0 cluster "/cgi-bin/ttl?q=1");
        Sim.Engine.delay 5.0;
        ignore (submit0 cluster "/cgi-bin/ttl?q=1"))
  in
  check_int "two executions" 2 (get cluster Swala.Server.K.cgi_execs);
  check_int "one hit" 1 (get cluster Swala.Server.K.hit_local)

let test_server_purge_daemon_removes_expired () =
  let cfg = Swala.Config.make ~purge_interval:1.0 () in
  let cluster =
    with_cluster ~cfg (fun cluster ->
        ignore (submit0 cluster "/cgi-bin/ttl?q=1");
        (* Wait past TTL (2s) plus a purge interval without touching it. *)
        Sim.Engine.delay 4.0;
        let store = Swala.Server.node_store (Swala.Server.node cluster 0) in
        check_int "purged from store" 0 (Cache.Store.length store))
  in
  check_bool "purge counted" true (get cluster Swala.Server.K.purged >= 1)

let test_server_preload () =
  let cluster =
    with_cluster (fun cluster ->
        Swala.Server.preload cluster ~node:0
          (Http.Request.get "/cgi-bin/fast?q=9")
          ~exec_time:0.5;
        ignore (submit0 cluster "/cgi-bin/fast?q=9"))
  in
  check_int "no exec" 0 (get cluster Swala.Server.K.cgi_execs);
  check_int "hit" 1 (get cluster Swala.Server.K.hit_local)

let test_server_failed_cgi_not_cached () =
  let eng = Sim.Engine.create () in
  let registry = make_registry () in
  Cgi.Registry.register registry
    (Cgi.Script.make ~failure_rate:1.0 ~name:"/cgi-bin/flaky"
       (Cgi.Cost.make (Cgi.Cost.Fixed 0.5)));
  let cluster =
    Swala.Server.create_cluster eng (Swala.Config.make ()) ~registry
      ~n_client_endpoints:1
  in
  Swala.Server.start cluster;
  let status = ref 0 in
  Sim.Engine.spawn eng (fun () ->
      let resp =
        Swala.Server.submit cluster ~client:1 ~node:0
          (Http.Request.get "/cgi-bin/flaky?q=1")
      in
      status := Http.Status.code resp.Http.Response.status;
      Swala.Server.stop cluster);
  Sim.Engine.run eng;
  check_int "500" 500 !status;
  check_int "failure counted" 1 (get cluster Swala.Server.K.cgi_failures);
  check_int "not inserted" 0 (get cluster Swala.Server.K.inserts)

(* ------------------------------------------------------------------ *)
(* Multi-node behaviour *)

let coop_cfg n = Swala.Config.make ~n_nodes:n ()

let test_server_remote_fetch () =
  let cluster =
    with_cluster ~cfg:(coop_cfg 2) (fun cluster ->
        (* Execute on node 0; let the broadcast propagate; ask node 1. *)
        ignore (submit0 cluster "/cgi-bin/fast?q=1");
        Sim.Engine.delay 0.1;
        let resp =
          Swala.Server.submit cluster ~client:(client_of cluster 0) ~node:1
            (Http.Request.get "/cgi-bin/fast?q=1")
        in
        check_int "200" 200 (Http.Status.code resp.Http.Response.status))
  in
  check_int "one exec" 1 (get cluster Swala.Server.K.cgi_execs);
  check_int "remote hit" 1 (get cluster Swala.Server.K.hit_remote);
  check_int "insert broadcast" 1 (get cluster Swala.Server.K.broadcast_insert)

let test_server_broadcast_updates_peer_directory () =
  let cluster =
    with_cluster ~cfg:(coop_cfg 3) (fun cluster ->
        ignore (submit0 cluster "/cgi-bin/fast?q=1");
        Sim.Engine.delay 0.1;
        let dir1 = Swala.Server.node_directory (Swala.Server.node cluster 1) in
        let dir2 = Swala.Server.node_directory (Swala.Server.node cluster 2) in
        check_int "peer 1 learned" 1 (Cache.Directory.table_size dir1 ~node:0);
        check_int "peer 2 learned" 1 (Cache.Directory.table_size dir2 ~node:0))
  in
  check_int "applied twice" 2 (get cluster Swala.Server.K.info_applied)

let test_server_false_hit_recovery () =
  let cluster =
    with_cluster ~cfg:(coop_cfg 2) (fun cluster ->
        Swala.Server.preload cluster ~node:0
          (Http.Request.get "/cgi-bin/fast?q=7")
          ~exec_time:0.5;
        Sim.Engine.delay 0.1;
        (* Drop the entry from node 0's store without telling anyone:
           node 1's directory still names node 0 as the owner. *)
        let store0 = Swala.Server.node_store (Swala.Server.node cluster 0) in
        ignore (Cache.Store.remove store0 "GET /cgi-bin/fast?q=7&xb=256");
        ignore (Cache.Store.remove store0 "GET /cgi-bin/fast?q=7");
        let resp =
          Swala.Server.submit cluster ~client:(client_of cluster 0) ~node:1
            (Http.Request.get "/cgi-bin/fast?q=7")
        in
        check_int "still 200" 200 (Http.Status.code resp.Http.Response.status))
  in
  check_int "false hit counted" 1 (get cluster Swala.Server.K.false_hit);
  check_int "recovered by executing" 1 (get cluster Swala.Server.K.cgi_execs)

let test_server_false_miss_concurrent () =
  let cluster =
    with_cluster (fun cluster ->
        (* Two identical requests arrive while the first is still running:
           the second must re-execute (no waiting), and be counted. *)
        let l = Sim.Latch.create 2 in
        for _ = 1 to 2 do
          Sim.Engine.spawn_child (fun () ->
              ignore (submit0 cluster "/cgi-bin/fast?q=dup");
              Sim.Latch.arrive l)
        done;
        Sim.Latch.wait l)
  in
  check_int "both executed" 2 (get cluster Swala.Server.K.cgi_execs);
  check_int "false miss counted" 1
    (get cluster Swala.Server.K.false_miss_concurrent)

let test_server_standalone_no_broadcast () =
  let cfg = Swala.Config.make ~n_nodes:2 ~cache_mode:Swala.Config.Standalone () in
  let cluster =
    with_cluster ~cfg (fun cluster ->
        ignore (submit0 cluster "/cgi-bin/fast?q=1");
        Sim.Engine.delay 0.1;
        (* Node 1 knows nothing: it must re-execute. *)
        ignore
          (Swala.Server.submit cluster ~client:(client_of cluster 0) ~node:1
             (Http.Request.get "/cgi-bin/fast?q=1")))
  in
  check_int "both executed" 2 (get cluster Swala.Server.K.cgi_execs);
  check_int "no broadcasts" 0 (get cluster Swala.Server.K.broadcast_insert);
  check_int "no remote hits" 0 (get cluster Swala.Server.K.hit_remote)

let test_server_eviction_broadcasts_delete () =
  let cfg = Swala.Config.make ~n_nodes:2 ~cache_capacity:1 () in
  let cluster =
    with_cluster ~cfg (fun cluster ->
        ignore (submit0 cluster "/cgi-bin/fast?q=1");
        ignore (submit0 cluster "/cgi-bin/fast?q=2");
        Sim.Engine.delay 0.1;
        (* Node 1's replica must no longer list q=1 for node 0. *)
        let dir1 = Swala.Server.node_directory (Swala.Server.node cluster 1) in
        check_int "only one entry listed" 1 (Cache.Directory.table_size dir1 ~node:0))
  in
  check_bool "delete broadcast sent" true
    (get cluster Swala.Server.K.broadcast_delete >= 1)

let test_server_counters_requests_total () =
  let cluster =
    with_cluster (fun cluster ->
        ignore (submit0 cluster "/files/doc-500b.html");
        ignore (submit0 cluster "/cgi-bin/fast?q=1");
        ignore (submit0 cluster "/nope"))
  in
  check_int "requests" 3 (get cluster Swala.Server.K.requests)

let test_total_hits () =
  let cluster =
    with_cluster ~cfg:(coop_cfg 2) (fun cluster ->
        ignore (submit0 cluster "/cgi-bin/fast?q=1");
        ignore (submit0 cluster "/cgi-bin/fast?q=1");
        Sim.Engine.delay 0.1;
        ignore
          (Swala.Server.submit cluster ~client:(client_of cluster 0) ~node:1
             (Http.Request.get "/cgi-bin/fast?q=1")))
  in
  check_int "local+remote" 2 (Swala.Server.total_hits cluster)

let test_server_node_range_checks () =
  let cluster = with_cluster (fun _ -> ()) in
  Alcotest.check_raises "bad node" (Invalid_argument "Server.node: range")
    (fun () -> ignore (Swala.Server.node cluster 9))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "swala"
    [
      ( "config",
        [
          Alcotest.test_case "default valid" `Quick test_config_default_valid;
          Alcotest.test_case "make overrides" `Quick test_config_make_overrides;
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "mode names" `Quick test_config_mode_names;
          Alcotest.test_case "models distinct" `Quick test_config_models_distinct;
        ] );
      ( "single-node",
        [
          Alcotest.test_case "file fetch" `Quick test_server_file_fetch;
          Alcotest.test_case "404" `Quick test_server_404;
          Alcotest.test_case "CGI exec then cache hit" `Quick
            test_server_cgi_exec_and_cache_hit;
          Alcotest.test_case "disabled mode always executes" `Quick
            test_server_cache_disabled_always_execs;
          Alcotest.test_case "uncacheable script" `Quick test_server_uncacheable_script;
          Alcotest.test_case "POST never cached" `Quick test_server_post_not_cached;
          Alcotest.test_case "threshold rejects fast CGI" `Quick
            test_server_threshold_rejects_fast_cgi;
          Alcotest.test_case "capacity eviction" `Quick test_server_capacity_eviction_on_node;
          Alcotest.test_case "TTL expiry end to end" `Quick test_server_ttl_expiry_end_to_end;
          Alcotest.test_case "purge daemon" `Quick test_server_purge_daemon_removes_expired;
          Alcotest.test_case "preload warms cache" `Quick test_server_preload;
          Alcotest.test_case "failed CGI not cached" `Quick test_server_failed_cgi_not_cached;
        ] );
      ( "multi-node",
        [
          Alcotest.test_case "remote fetch" `Quick test_server_remote_fetch;
          Alcotest.test_case "broadcast updates peer directories" `Quick
            test_server_broadcast_updates_peer_directory;
          Alcotest.test_case "false hit recovers by executing" `Quick
            test_server_false_hit_recovery;
          Alcotest.test_case "concurrent duplicate is a false miss" `Quick
            test_server_false_miss_concurrent;
          Alcotest.test_case "standalone never cooperates" `Quick
            test_server_standalone_no_broadcast;
          Alcotest.test_case "eviction broadcasts delete" `Quick
            test_server_eviction_broadcasts_delete;
          Alcotest.test_case "request counter" `Quick test_server_counters_requests_total;
          Alcotest.test_case "total hits" `Quick test_total_hits;
          Alcotest.test_case "node range checks" `Quick test_server_node_range_checks;
        ] );
    ]
