(* Sweep: the Domain-pool map behind --jobs.

   The contract under test is determinism: for any [jobs], [Sweep.map]
   returns element-for-element the same array as the sequential map —
   order preserved, no point dropped or duplicated, work claimed
   dynamically. The cluster test is the end-to-end version: whole
   simulation runs (engine, RNGs, domain-local current-engine slot) on
   2 and 4 domains must serialize to byte-identical metrics JSON as the
   single-domain run, which is what makes `swala_sim run --seeds N
   --jobs M` and the parallel ablations trustworthy. *)

let test_order_preserved () =
  let items = Array.init 37 (fun i -> i) in
  let f i = Printf.sprintf "p%d" (i * i) in
  let seq = Array.map f items in
  List.iter
    (fun jobs ->
      Alcotest.(check (array string))
        (Printf.sprintf "jobs=%d equals sequential" jobs)
        seq
        (Sim.Sweep.map ~jobs f items))
    [ 1; 2; 4; 8 ]

let test_more_jobs_than_points () =
  Alcotest.(check (array int))
    "jobs clamped to point count" [| 2; 4 |]
    (Sim.Sweep.map ~jobs:16 (fun x -> 2 * x) [| 1; 2 |]);
  Alcotest.(check (array int)) "empty input" [||]
    (Sim.Sweep.map ~jobs:4 (fun x -> x) [||])

let test_map_list () =
  Alcotest.(check (list int))
    "map_list matches List.map" [ 2; 3; 4 ]
    (Sim.Sweep.map_list ~jobs:2 succ [ 1; 2; 3 ])

exception Boom

let test_worker_exception () =
  match Sim.Sweep.map ~jobs:2 (fun i -> if i = 5 then raise Boom else i)
          (Array.init 10 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected Sweep.Worker"
  | exception Sim.Sweep.Worker (Boom, _) -> ()

(* One small cooperative-cache run per seed; JSON output on 2 and 4
   domains must be byte-identical to the sequential run. *)
let run_seed sd =
  let trace = Workload.Synthetic.coop ~seed:sd ~n:80 ~n_unique:20 ~n_hot:8 () in
  let cfg =
    Swala.Config.make ~n_nodes:2 ~cache_mode:Swala.Config.Cooperative
      ~cache_threshold:0.001 ~seed:sd ()
  in
  let r = Swala.Cluster_runner.run cfg ~trace ~n_streams:4 () in
  Swala.Cluster_runner.result_to_json r

let test_cluster_runs_identical () =
  let seeds = [ 42; 43; 44; 45 ] in
  let sequential = List.map run_seed seeds in
  List.iter
    (fun jobs ->
      Alcotest.(check (list string))
        (Printf.sprintf "jobs=%d JSON identical to sequential" jobs)
        sequential
        (Sim.Sweep.map_list ~jobs run_seed seeds))
    [ 2; 4 ]

let () =
  Alcotest.run "sweep"
    [
      ( "map",
        [
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "jobs > points" `Quick test_more_jobs_than_points;
          Alcotest.test_case "map_list" `Quick test_map_list;
          Alcotest.test_case "worker exception" `Quick test_worker_exception;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "cluster runs byte-identical" `Quick
            test_cluster_runs_identical;
        ] );
    ]
