(* Tests for the flight recorder's storage plane: Timeline ring buffers
   (the bucket-merge conservation law, as QCheck properties), the probe
   Registry (probe kinds, width alignment, JSON/CSV export), the
   Timeseries export helpers, and the metrics-JSON schema golden test
   that gives bin/metrics_diff a stable key set to diff against.

   QCheck_alcotest ignores QCHECK_COUNT, so the long-iteration CI job's
   knob is honoured here by hand. *)

let count =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> 200)
  | None -> 200

module TL = Metrics.Timeline
module R = Metrics.Registry
module J = Metrics.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

let close a b =
  Float.abs (a -. b)
  <= 1e-6 *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

(* ------------------------------------------------------------------ *)
(* Timeline: the merge conservation law *)

(* Observation streams as (gap, value) pairs. Gaps up to several bucket
   widths force horizon-driven merges; dense stretches exercise
   in-bucket accumulation. *)
let obs_arb =
  let print obs =
    String.concat ";"
      (List.map (fun (dt, v) -> Printf.sprintf "+%g:%g" dt v) obs)
  in
  QCheck.make ~print
    QCheck.Gen.(
      list_size (0 -- 300)
        (pair (float_bound_inclusive 3.) (float_range (-50.) 50.)))

let replay ?(capacity = 8) ~interval obs =
  let t = TL.create ~capacity ~interval () in
  let time = ref 0. in
  List.iter
    (fun (dt, v) ->
      time := !time +. dt;
      TL.record t ~time:!time v)
    obs;
  t

(* Merging halves resolution but may never lose or invent samples. *)
let prop_conservation =
  QCheck.Test.make ~count ~name:"merging conserves total count and sum"
    obs_arb
    (fun obs ->
      let t = replay ~interval:1.0 obs in
      let bs = TL.buckets t in
      let bn = Array.fold_left (fun a b -> a + b.TL.n) 0 bs in
      let bsum = Array.fold_left (fun a b -> a +. b.TL.total) 0. bs in
      let vsum = List.fold_left (fun a (_, v) -> a +. v) 0. obs in
      bn = List.length obs
      && TL.total_count t = bn
      && close (TL.total_sum t) vsum
      && close bsum vsum)

let prop_bounded =
  QCheck.Test.make ~count
    ~name:"memory stays bounded; width is interval * 2^k" obs_arb
    (fun obs ->
      let t = replay ~interval:1.0 obs in
      let rec pow2_multiple w = close w (TL.width t) || (w < TL.width t && pow2_multiple (w *. 2.)) in
      TL.n_buckets t <= TL.capacity t && pow2_multiple 1.0)

let prop_bucket_stats =
  QCheck.Test.make ~count ~name:"bucket statistics stay within the data"
    obs_arb
    (fun obs ->
      let t = replay ~interval:1.0 obs in
      let vs = List.map snd obs in
      let gmin = List.fold_left Float.min Float.infinity vs
      and gmax = List.fold_left Float.max Float.neg_infinity vs in
      Array.for_all
        (fun b ->
          if b.TL.n = 0 then
            Float.is_nan b.TL.mean && Float.is_nan b.TL.min
            && Float.is_nan b.TL.max && Float.is_nan b.TL.last
          else
            b.TL.min <= b.TL.max
            && b.TL.min -. 1e-9 <= b.TL.mean
            && b.TL.mean <= b.TL.max +. 1e-9
            && b.TL.min >= gmin && b.TL.max <= gmax
            && b.TL.last >= b.TL.min && b.TL.last <= b.TL.max)
        (TL.buckets t))

(* A tick-only sibling driven by the same instants ends with the same
   geometry — the invariant that keeps registry CSV rows aligned. *)
let prop_tick_alignment =
  QCheck.Test.make ~count ~name:"tick-driven sibling keeps the same geometry"
    obs_arb
    (fun obs ->
      let a = TL.create ~capacity:8 ~interval:1.0 ()
      and b = TL.create ~capacity:8 ~interval:1.0 () in
      let time = ref 0. in
      List.iter
        (fun (dt, v) ->
          time := !time +. dt;
          TL.record a ~time:!time v;
          TL.tick b ~time:!time)
        obs;
      TL.width a = TL.width b && TL.n_buckets a = TL.n_buckets b)

let test_merge_halves_resolution () =
  let t = TL.create ~capacity:4 ~interval:1.0 () in
  List.iteri
    (fun i v -> TL.record t ~time:(float_of_int i +. 0.5) v)
    [ 1.; 3.; 10.; 20. ];
  check_float "native width" 1.0 (TL.width t);
  (* The fifth bucket does not fit: pairs merge, width doubles. *)
  TL.record t ~time:4.5 7.;
  check_float "width doubled" 2.0 (TL.width t);
  check_int "three buckets used" 3 (TL.n_buckets t);
  let b0 = TL.bucket t 0 in
  check_int "merged count" 2 b0.TL.n;
  check_float "merged mean" 2.0 b0.TL.mean;
  check_float "merged min" 1.0 b0.TL.min;
  check_float "merged max" 3.0 b0.TL.max;
  check_float "later sample's last wins" 3.0 b0.TL.last;
  check_int "conserved" 5 (TL.total_count t)

let test_timeline_validates () =
  Alcotest.check_raises "tiny capacity"
    (Invalid_argument "Timeline.create: capacity must be >= 2") (fun () ->
      ignore (TL.create ~capacity:1 ~interval:1.0 () : TL.t));
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Timeline.create: interval must be > 0") (fun () ->
      ignore (TL.create ~interval:0. () : TL.t));
  let t = TL.create ~interval:1.0 () in
  Alcotest.check_raises "negative time"
    (Invalid_argument "Timeline.record: negative time") (fun () ->
      TL.record t ~time:(-1.) 0.)

(* ------------------------------------------------------------------ *)
(* Registry: probe kinds, export alignment *)

(* One registry, three probe kinds, three windows: a healthy window, an
   empty-histogram window (the alignment case) and a counter reset. *)
let sampled_registry () =
  let reg = R.create ~interval:1.0 () in
  let g = ref 2. and c = ref 0. and hc = ref 0. and ht = ref 0. in
  R.gauge reg "g" (fun () -> !g);
  R.counter reg "c" (fun () -> !c);
  R.histogram reg "h" (fun () -> (!hc, !ht));
  c := 5.;
  hc := 2.;
  ht := 3.;
  R.sample reg ~time:0.5;
  g := 4.;
  (* counter stalls, histogram sees no new observations *)
  R.sample reg ~time:1.5;
  c := 2.;
  (* cumulative reading fell: a counter reset, not a negative rate *)
  hc := 3.;
  ht := 4.5;
  R.sample reg ~time:2.5;
  reg

let find_series reg name =
  match List.find_opt (fun (s : R.series) -> s.name = name) (R.series reg) with
  | Some s -> s
  | None -> Alcotest.failf "series %s not found" name

let test_registry_kinds () =
  let reg = sampled_registry () in
  check_int "three sampling rounds" 3 (R.n_samples reg);
  let g = find_series reg "g" in
  let c = find_series reg "c" in
  let h = find_series reg "h" in
  List.iter
    (fun (s : R.series) ->
      check_float (s.name ^ " width") 1.0 s.width;
      check_int (s.name ^ " points") 3 (Array.length s.points))
    [ g; c; h ];
  check_float "gauge window 1" 2. (snd g.points.(0));
  check_float "gauge window 2" 4. (snd g.points.(1));
  check_float "counter rate window 1" 5. (snd c.points.(0));
  check_float "counter stall is a zero rate" 0. (snd c.points.(1));
  check_float "reset restarts from the new reading" 2. (snd c.points.(2));
  check_float "windowed mean of 2 obs" 1.5 (snd h.points.(0));
  check_bool "empty histogram window is nan" true
    (Float.is_nan (snd h.points.(1)));
  check_float "windowed mean of the delta" 1.5 (snd h.points.(2))

let test_registry_duplicate_name () =
  let reg = R.create ~interval:1.0 () in
  R.gauge reg "g" (fun () -> 0.);
  Alcotest.check_raises "duplicate probe"
    (Invalid_argument "Registry: duplicate probe g") (fun () ->
      R.counter reg "g" (fun () -> 0.))

let test_csv_aligned () =
  let reg = sampled_registry () in
  (match String.split_on_char '\n' (String.trim (R.to_csv reg)) with
  | [ header; r0; r1; r2 ] ->
      check_string "header" "t,g,c,h" header;
      check_string "window 1" "0,2,5,1.5" r0;
      check_string "empty histogram window leaves an empty cell" "1,4,0," r1;
      check_string "window 3" "2,4,2,1.5" r2
  | lines -> Alcotest.failf "expected 4 CSV lines, got %d" (List.length lines));
  (* keep filters columns, not rows *)
  match
    String.split_on_char '\n'
      (String.trim (R.to_csv ~keep:(fun n -> n = "g") reg))
  with
  | header :: rows ->
      check_string "filtered header" "t,g" header;
      check_int "still one row per bucket" 3 (List.length rows)
  | [] -> Alcotest.fail "empty CSV"

(* The JSON export round-trips through the parser the CLI tools use, and
   empty windows serialize as null — the convention metrics_diff and
   `swala_sim report` both rely on. *)
let test_registry_json_null () =
  let reg = sampled_registry () in
  let j =
    match J.of_string (J.to_string (R.to_json reg)) with
    | Ok v -> v
    | Error e -> Alcotest.failf "registry JSON does not parse: %s" e
  in
  check_bool "interval_s present" true (J.member "interval_s" j <> None);
  (match J.member "series" j with
  | Some series ->
      Alcotest.(check (list string))
        "series in registration order" [ "g"; "c"; "h" ] (J.keys series);
      let h = Option.get (J.member "h" series) in
      check_string "kind" "mean"
        (match J.member "kind" h with Some (J.Str s) -> s | _ -> "?");
      (match J.member "points" h with
      | Some (J.List [ _; p1; _ ]) -> (
          (match J.member "v" p1 with
          | Some J.Null -> ()
          | other ->
              Alcotest.failf "empty window v should be null, got %s"
                (match other with None -> "absent" | Some v -> J.to_string v));
          match J.member "n" p1 with
          | Some (J.Int 0) -> ()
          | _ -> Alcotest.fail "empty window n should be 0")
      | _ -> Alcotest.fail "expected three points")
  | None -> Alcotest.fail "no series object")

(* ------------------------------------------------------------------ *)
(* Timeseries export helpers *)

let test_timeseries_json_null () =
  let ts = Metrics.Timeseries.create ~window:1.0 in
  Metrics.Timeseries.add ts ~time:0.5 1.0;
  Metrics.Timeseries.add ts ~time:2.5 3.0;
  check_bool "empty window mean is nan" true
    (Float.is_nan (Metrics.Timeseries.bucket_means ts).(1));
  let j =
    match J.of_string (J.to_string (Metrics.Timeseries.to_json ts)) with
    | Ok v -> v
    | Error e -> Alcotest.failf "timeseries JSON does not parse: %s" e
  in
  match (J.member "means" j, J.member "counts" j) with
  | Some (J.List means), Some (J.List counts) ->
      check_int "three windows" 3 (List.length means);
      check_bool "empty window serializes as null" true
        (List.nth means 1 = J.Null);
      check_bool "counts mark it empty" true (List.nth counts 1 = J.Int 0)
  | _ -> Alcotest.fail "expected means and counts arrays"

let test_rate_of_counter () =
  let r =
    Metrics.Timeseries.rate_of_counter ~window:2.
      [| Float.nan; 10.; 10.; 30. |]
  in
  check_bool "empty window stays nan" true (Float.is_nan r.(0));
  check_bool "first reading has no delta" true (Float.is_nan r.(1));
  check_float "flat counter is a zero rate" 0. r.(2);
  check_float "delta over elapsed seconds" 10. r.(3);
  (* a reading below its predecessor is a counter reset *)
  let r = Metrics.Timeseries.rate_of_counter ~window:1. [| 5.; 2. |] in
  check_float "reset restarts from the new reading" 2. r.(1);
  (* gaps spread the delta over the elapsed windows *)
  let r =
    Metrics.Timeseries.rate_of_counter ~window:1. [| 0.; Float.nan; 6. |]
  in
  check_float "gap amortised" 3. r.(2)

(* ------------------------------------------------------------------ *)
(* Metrics-JSON schema: the golden key set metrics_diff diffs against *)

let base_keys =
  [
    "duration_s"; "n_requests"; "n_events"; "hits"; "hit_ratio"; "net_lost";
    "net_lost_partition"; "dir_lock_acquisitions"; "dir_mode"; "dir_entries";
    "shard_imbalance"; "forward_wait_s"; "hit_latency_s"; "utilisation";
    "response_s"; "cgi_response_s"; "file_response_s"; "counters";
    "wait_histograms";
  ]

let tiny_run ?telemetry_interval ?slo_target () =
  let trace = Workload.Synthetic.coop ~seed:3 ~n:60 ~n_unique:42 ~n_hot:6 () in
  Swala.Cluster_runner.run
    (Swala.Config.make ~n_nodes:2 ~cache_mode:Swala.Config.Cooperative
       ~telemetry_interval ~slo_target ~seed:3 ())
    ~trace ~n_streams:4 ()

let parse_result r =
  match J.of_string (Swala.Cluster_runner.result_to_json r) with
  | Ok v -> v
  | Error e -> Alcotest.failf "metrics JSON does not parse: %s" e

let test_json_schema_golden () =
  let r = tiny_run () in
  check_bool "telemetry off: no registry" true (r.Swala.Cluster_runner.timelines = None);
  check_bool "telemetry off: no monitor" true (r.Swala.Cluster_runner.health = None);
  Alcotest.(check (list string))
    "default payload key set and order" base_keys
    (J.keys (parse_result r))

let test_json_schema_telemetry () =
  let r = tiny_run ~telemetry_interval:0.5 ~slo_target:0.5 () in
  let j = parse_result r in
  Alcotest.(check (list string))
    "telemetry appends its sections last"
    (base_keys @ [ "timelines"; "incidents" ])
    (J.keys j);
  (match J.member "timelines" j with
  | Some tl ->
      Alcotest.(check (list string))
        "timelines section shape"
        [ "interval_s"; "samples"; "series" ]
        (J.keys tl)
  | None -> Alcotest.fail "no timelines section");
  match J.member "incidents" j with
  | Some (J.List _) -> ()
  | _ -> Alcotest.fail "incidents should be a list"

(* The observer must not perturb the simulation: the same run with the
   flight recorder on reports identical behavioral metrics (only
   n_events moves, by the sampler daemon's own wakeups). *)
let test_telemetry_does_not_perturb () =
  let off = tiny_run () and on = tiny_run ~telemetry_interval:0.5 () in
  Alcotest.(check (float 0.))
    "same makespan" off.Swala.Cluster_runner.duration
    on.Swala.Cluster_runner.duration;
  check_int "same hits" off.Swala.Cluster_runner.hits
    on.Swala.Cluster_runner.hits;
  Alcotest.(check (float 0.))
    "same mean response"
    (Swala.Cluster_runner.mean_response off)
    (Swala.Cluster_runner.mean_response on)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "timeline"
    [
      qsuite "timeline-props"
        [
          prop_conservation; prop_bounded; prop_bucket_stats;
          prop_tick_alignment;
        ];
      ( "timeline",
        [
          Alcotest.test_case "merge halves resolution" `Quick
            test_merge_halves_resolution;
          Alcotest.test_case "validation" `Quick test_timeline_validates;
        ] );
      ( "registry",
        [
          Alcotest.test_case "probe kinds" `Quick test_registry_kinds;
          Alcotest.test_case "duplicate names rejected" `Quick
            test_registry_duplicate_name;
          Alcotest.test_case "CSV rows stay aligned" `Quick test_csv_aligned;
          Alcotest.test_case "JSON nulls for empty windows" `Quick
            test_registry_json_null;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "to_json nulls empty windows" `Quick
            test_timeseries_json_null;
          Alcotest.test_case "rate_of_counter" `Quick test_rate_of_counter;
        ] );
      ( "schema",
        [
          Alcotest.test_case "default payload golden keys" `Quick
            test_json_schema_golden;
          Alcotest.test_case "telemetry payload golden keys" `Quick
            test_json_schema_telemetry;
          Alcotest.test_case "telemetry does not perturb the run" `Quick
            test_telemetry_does_not_perturb;
        ] );
    ]
