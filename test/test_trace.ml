(* Tests for causal request tracing: the engine's fiber-local span slot,
   the Trace span/instant API, the trace-off byte-identity guarantee
   (tracing must never perturb the simulation), span-tree causality over
   a real cluster run, the Chrome trace-event export, the latency
   breakdown accounting identity, and the contention histograms. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Engine fiber-local storage *)

let test_engine_local_inherit () =
  let e = Sim.Engine.create () in
  let child_saw = ref (-1) in
  let child_after_parent_change = ref (-1) in
  let parent_saw = ref (-1) in
  Sim.Engine.spawn e (fun () ->
      check_int "starts at 0" 0 (Sim.Engine.get_local ());
      Sim.Engine.set_local 7;
      Sim.Engine.spawn_child (fun () ->
          child_saw := Sim.Engine.get_local ();
          (* The child's slot is a copy: writes don't leak either way. *)
          Sim.Engine.set_local 99;
          Sim.Engine.delay 1.0;
          child_after_parent_change := Sim.Engine.get_local ());
      Sim.Engine.set_local 8;
      Sim.Engine.delay 2.0;
      parent_saw := Sim.Engine.get_local ());
  Sim.Engine.run e;
  check_int "child inherited parent's value" 7 !child_saw;
  check_int "child kept its own write" 99 !child_after_parent_change;
  check_int "parent unaffected by child" 8 !parent_saw

let test_engine_local_outside_process () =
  check_int "get_local outside a process" 0 (Sim.Engine.get_local ());
  match Sim.Engine.set_local 3 with
  | exception Sim.Engine.Not_in_process -> ()
  | () -> Alcotest.fail "set_local outside a process should raise"

(* ------------------------------------------------------------------ *)
(* Trace API on a manual clock *)

let manual_trace () =
  let now = ref 0. in
  (Metrics.Trace.create ~clock:(fun () -> !now) (), now)

let test_trace_span_tree () =
  let tr, now = manual_trace () in
  let root = Metrics.Trace.begin_span tr ~track:9 ~name:"request" () in
  now := 1.;
  let child = Metrics.Trace.begin_span tr ~parent:root ~track:0 ~name:"handle" () in
  now := 4.;
  Metrics.Trace.end_span tr child;
  now := 5.;
  Metrics.Trace.end_span tr root;
  check_int "two spans" 2 (Metrics.Trace.n_spans tr);
  check_int "none open" 0 (Metrics.Trace.open_spans tr);
  (match Metrics.Trace.find tr child with
  | None -> Alcotest.fail "child not found"
  | Some s ->
      check_int "child parent" root s.Metrics.Trace.parent;
      check_int "child root" root s.Metrics.Trace.root;
      check_float "child t0" 1. s.Metrics.Trace.t0;
      check_float "child t1" 4. s.Metrics.Trace.t1);
  match Metrics.Trace.find tr root with
  | None -> Alcotest.fail "root not found"
  | Some s ->
      check_int "root parent is none" Metrics.Trace.none s.Metrics.Trace.parent;
      check_float "root charged child time" 3. s.Metrics.Trace.child_time

let test_trace_async_not_charged () =
  let tr, now = manual_trace () in
  let root = Metrics.Trace.begin_span tr ~track:9 ~name:"request" () in
  let a =
    Metrics.Trace.begin_span tr ~parent:root ~async:true ~track:1
      ~name:"fetch.serve" ()
  in
  now := 2.;
  Metrics.Trace.end_span tr a;
  Metrics.Trace.end_span tr root;
  match Metrics.Trace.find tr root with
  | None -> Alcotest.fail "root not found"
  | Some s -> check_float "async child not charged" 0. s.Metrics.Trace.child_time

let test_trace_dangling_parent_roots () =
  let tr, _ = manual_trace () in
  let s = Metrics.Trace.begin_span tr ~parent:12345 ~track:0 ~name:"x" () in
  Metrics.Trace.end_span tr s;
  match Metrics.Trace.find tr s with
  | None -> Alcotest.fail "span not found"
  | Some sp ->
      check_int "dangling parent becomes a root" Metrics.Trace.none
        sp.Metrics.Trace.parent;
      check_int "own root" s sp.Metrics.Trace.root

let test_trace_end_errors () =
  let tr, _ = manual_trace () in
  let s = Metrics.Trace.begin_span tr ~track:0 ~name:"x" () in
  Metrics.Trace.end_span tr s;
  (match Metrics.Trace.end_span tr s with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double end should raise");
  match Metrics.Trace.end_span tr 999 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unknown id should raise"

let test_trace_exception_safety () =
  let tr, _ = manual_trace () in
  (try
     Metrics.Trace.span tr ~track:0 ~name:"boom" (fun () -> failwith "boom")
   with Failure _ -> ());
  check_int "span closed on exception" 0 (Metrics.Trace.open_spans tr)

(* ------------------------------------------------------------------ *)
(* Minimal JSON well-formedness scan: balanced braces/brackets outside
   string literals, legal escapes inside them. Not a full parser, but
   catches the classes of emitter bugs (unescaped quotes, truncation)
   that would break Perfetto. CI additionally runs a real JSON parser. *)

let scan_json s =
  let depth = ref 0 in
  let i = ref 0 in
  let n = String.length s in
  let ok = ref true in
  let in_str = ref false in
  while !i < n && !ok do
    let c = s.[!i] in
    if !in_str then
      if c = '\\' then incr i (* skip the escaped character *)
      else if c = '"' then in_str := false
      else if c = '\n' then ok := false
    else (
      (match c with
      | '{' | '[' -> incr depth
      | '}' | ']' -> decr depth
      | '"' -> in_str := true
      | _ -> ());
      if !depth < 0 then ok := false);
    incr i
  done;
  !ok && (not !in_str) && !depth = 0

let count_substring hay needle =
  let nl = String.length needle and hl = String.length hay in
  let c = ref 0 in
  for i = 0 to hl - nl do
    if String.sub hay i nl = needle then incr c
  done;
  !c

(* ------------------------------------------------------------------ *)
(* Cluster runs *)

let coop_cfg ?(trace = false) () =
  Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative ~trace
    ~seed:11 ()

let coop_run ?trace () =
  let wl = Workload.Synthetic.coop ~seed:11 ~n:300 ~n_unique:200 ~locality:0.1 () in
  Swala.Cluster_runner.run (coop_cfg ?trace ()) ~trace:wl ~n_streams:8 ()

(* The central guarantee: tracing observes, never perturbs. A traced run
   must be indistinguishable from an untraced one in every simulation
   output — same counters, same response times, same virtual makespan,
   same event count. *)
let test_trace_off_identical () =
  let off = coop_run ~trace:false () in
  let on_ = coop_run ~trace:true () in
  check_bool "tracer off" true (off.Swala.Cluster_runner.tracer = None);
  check_bool "tracer on" true (on_.Swala.Cluster_runner.tracer <> None);
  check_bool "histograms off" true
    (off.Swala.Cluster_runner.wait_histograms = []);
  check_bool "counters equal" true
    (Metrics.Counter.equal off.Swala.Cluster_runner.counters
       on_.Swala.Cluster_runner.counters);
  check_float "same makespan" off.Swala.Cluster_runner.duration
    on_.Swala.Cluster_runner.duration;
  check_int "same event count" off.Swala.Cluster_runner.n_events
    on_.Swala.Cluster_runner.n_events;
  check_int "same sample count"
    (Metrics.Sample.count off.Swala.Cluster_runner.response)
    (Metrics.Sample.count on_.Swala.Cluster_runner.response);
  check_float "same mean response"
    (Swala.Cluster_runner.mean_response off)
    (Swala.Cluster_runner.mean_response on_);
  check_float "same max response"
    (Metrics.Sample.max off.Swala.Cluster_runner.response)
    (Metrics.Sample.max on_.Swala.Cluster_runner.response)

let tracer_of r =
  match r.Swala.Cluster_runner.tracer with
  | Some tr -> tr
  | None -> Alcotest.fail "expected a tracer"

let test_span_trees_valid () =
  let r = coop_run ~trace:true () in
  let tr = tracer_of r in
  check_int "all spans closed" 0 (Metrics.Trace.open_spans tr);
  let spans = Metrics.Trace.spans tr in
  let roots =
    List.filter
      (fun s ->
        s.Metrics.Trace.parent = Metrics.Trace.none
        && s.Metrics.Trace.name = "request")
      spans
  in
  check_int "one root per request" 300 (List.length roots);
  (* Children start after their parents and every tree member points at
     its tree's root. End times are NOT contained: under weak consistency
     the server answers the client and then broadcasts, so "handle"
     legitimately outlives the client-observed "request" interval (the
     breakdown's telescoping self-time sum is exact regardless). *)
  List.iter
    (fun s ->
      check_bool
        (Printf.sprintf "span %d well-formed" s.Metrics.Trace.id)
        true
        (s.Metrics.Trace.t1 >= s.Metrics.Trace.t0);
      match Metrics.Trace.find tr s.Metrics.Trace.parent with
      | None -> ()
      | Some p ->
          check_int
            (Printf.sprintf "span %d shares its parent's root"
               s.Metrics.Trace.id)
            p.Metrics.Trace.root s.Metrics.Trace.root;
          check_bool
            (Printf.sprintf "span %d starts after its parent"
               s.Metrics.Trace.id)
            true
            (s.Metrics.Trace.t0 >= p.Metrics.Trace.t0 -. 1e-9))
    spans;
  (* Each request tree reaches a server: at least one handle span. *)
  let handles = Hashtbl.create 301 in
  List.iter
    (fun s ->
      if s.Metrics.Trace.name = "handle" then
        Hashtbl.replace handles s.Metrics.Trace.root ())
    spans;
  List.iter
    (fun root ->
      check_bool
        (Printf.sprintf "tree %d has a handle span" root.Metrics.Trace.id)
        true
        (Hashtbl.mem handles root.Metrics.Trace.id))
    roots

let test_chrome_export () =
  let r = coop_run ~trace:true () in
  let tr = tracer_of r in
  let json = Metrics.Trace.to_chrome_json tr in
  check_bool "well-formed" true (scan_json json);
  check_bool "trace-event envelope" true
    (count_substring json "\"traceEvents\"" = 1);
  (* Every span emits one begin and one end event. *)
  let n = Metrics.Trace.n_spans tr in
  check_int "begin events" n (count_substring json "\"ph\":\"b\"");
  check_int "end events" n (count_substring json "\"ph\":\"e\"");
  (* One process-name metadata row per track: 4 nodes + clients. *)
  check_int "track names" 5 (count_substring json "\"process_name\"");
  check_bool "clients track" true (count_substring json "\"clients\"" >= 1)

(* Self times over sync spans partition each root's duration, so the
   breakdown's phase totals must sum to the summed root durations and the
   phase means to the mean response time (acceptance bound: 1%). *)
let test_breakdown_sums () =
  let r = coop_run ~trace:true () in
  let tr = tracer_of r in
  let b = Metrics.Trace.breakdown tr ~root:"request" in
  check_int "all requests rooted" 300 b.Metrics.Trace.n_roots;
  check_bool "has phases" true (List.length b.Metrics.Trace.phases > 3);
  let sum_total =
    List.fold_left
      (fun acc p -> acc +. p.Metrics.Trace.total)
      0. b.Metrics.Trace.phases
  in
  check_bool "phase totals sum to end-to-end (1%)" true
    (abs_float (sum_total -. b.Metrics.Trace.total_time)
    <= 0.01 *. b.Metrics.Trace.total_time);
  let sum_means =
    List.fold_left
      (fun acc p -> acc +. p.Metrics.Trace.mean)
      0. b.Metrics.Trace.phases
  in
  let mean_resp = Swala.Cluster_runner.mean_response r in
  check_bool "phase means sum to mean response (1%)" true
    (abs_float (sum_means -. mean_resp) <= 0.01 *. mean_resp);
  let shares =
    List.fold_left
      (fun acc p -> acc +. p.Metrics.Trace.share)
      0. b.Metrics.Trace.phases
  in
  check_bool "shares sum to 1 (1%)" true (abs_float (shares -. 1.) <= 0.01)

let test_wait_histograms_populated () =
  let r = coop_run ~trace:true () in
  let hists = r.Swala.Cluster_runner.wait_histograms in
  let expected =
    [
      "dir.rd_wait"; "dir.wr_wait"; "dir.queue"; "listen.wait"; "listen.depth";
      "cpu.wait"; "cpu.queue"; "disk.wait";
    ]
  in
  check_int "eight histograms" (List.length expected) (List.length hists);
  List.iter
    (fun name ->
      check_bool (name ^ " exported") true (List.mem_assoc name hists))
    expected;
  (* A cooperative run exercises at least these three. *)
  List.iter
    (fun name ->
      check_bool (name ^ " observed") true
        (Metrics.Histogram.count (List.assoc name hists) > 0))
    [ "dir.rd_wait"; "listen.wait"; "cpu.queue" ]

(* Faults appear as instants: run through a partition that heals and
   check the heal marker (and its Chrome rendering) is present. *)
let test_partition_heal_instant () =
  let wl = Workload.Synthetic.coop ~seed:3 ~n:200 ~n_unique:120 ~locality:0.1 () in
  let cfg =
    Swala.Config.make ~n_nodes:4 ~cache_mode:Swala.Config.Cooperative
      ~fault:
        (Some
           (Sim.Fault.make
              ~partitions:
                [
                  {
                    Sim.Fault.pname = "halves";
                    groups = [ [ 0; 1 ]; [ 2; 3 ] ];
                    cut_at = 0.5;
                    heal_at = 3.0;
                  };
                ]
              ()))
      ~fetch_timeout:(Some 0.5) ~trace:true ~seed:3 ()
  in
  let r = Swala.Cluster_runner.run cfg ~trace:wl ~n_streams:8 () in
  let tr = tracer_of r in
  check_bool "heal instant recorded" true
    (List.exists
       (fun (_, name) -> name = "partition.heal")
       (Metrics.Trace.instants tr));
  check_bool "heal instant exported" true
    (count_substring (Metrics.Trace.to_chrome_json tr) "\"partition.heal\"" >= 1)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "trace"
    [
      ( "engine-local",
        [
          Alcotest.test_case "inherit on spawn_child" `Quick
            test_engine_local_inherit;
          Alcotest.test_case "outside a process" `Quick
            test_engine_local_outside_process;
        ] );
      ( "span-api",
        [
          Alcotest.test_case "tree and child time" `Quick test_trace_span_tree;
          Alcotest.test_case "async not charged" `Quick
            test_trace_async_not_charged;
          Alcotest.test_case "dangling parent roots" `Quick
            test_trace_dangling_parent_roots;
          Alcotest.test_case "end errors" `Quick test_trace_end_errors;
          Alcotest.test_case "exception safety" `Quick
            test_trace_exception_safety;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "trace off is byte-identical" `Quick
            test_trace_off_identical;
          Alcotest.test_case "span trees valid" `Quick test_span_trees_valid;
          Alcotest.test_case "chrome export" `Quick test_chrome_export;
          Alcotest.test_case "breakdown sums" `Quick test_breakdown_sums;
          Alcotest.test_case "wait histograms" `Quick
            test_wait_histograms_populated;
          Alcotest.test_case "partition heal instant" `Quick
            test_partition_heal_instant;
        ] );
    ]
