(* Tests for workload generation and analysis: traces, log format,
   WebStone mix, synthetic generators, Table-1 analyzer. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float_eps eps = Alcotest.(check (float eps))
let check_string = Alcotest.(check string)

let cgi ?(id = 0) ?(script = "/cgi-bin/q") ?(demand = 1.0) ?(out = 100) key =
  {
    Workload.Trace.id;
    kind = Workload.Trace.Cgi { script; args = [ ("q", key) ]; demand; out_bytes = out };
  }

let file ?(id = 0) path bytes =
  { Workload.Trace.id; kind = Workload.Trace.File { path; bytes } }

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_key_stability () =
  let a = cgi "alpha" and b = cgi "alpha" in
  check_string "same args same key" (Workload.Trace.key a) (Workload.Trace.key b);
  let c = cgi "beta" in
  check_bool "different args differ" true
    (Workload.Trace.key a <> Workload.Trace.key c)

let test_trace_to_request () =
  let item = cgi ~demand:2.0 "maps" in
  let req = Workload.Trace.to_request item in
  Alcotest.(check (option string)) "arg carried" (Some "maps")
    (Http.Uri.query_get req.Http.Request.uri "q");
  check_string "path" "/cgi-bin/q" req.Http.Request.uri.Http.Uri.path

let test_trace_service_time () =
  check_float_eps 1e-9 "cgi = demand" 2.5
    (Workload.Trace.service_time (cgi ~demand:2.5 "k"));
  let f = file "/doc" 80_000 in
  (* open cost + bytes at memory bandwidth *)
  check_float_eps 1e-9 "file" 0.003 (Workload.Trace.service_time f)

let test_trace_aggregates () =
  let t = [ cgi ~demand:1.0 "a"; cgi ~demand:2.0 "a"; file "/f" 0 ] in
  check_int "length" 3 (Workload.Trace.length t);
  check_int "unique" 2 (Workload.Trace.unique_keys t);
  check_bool "is_cgi" true (Workload.Trace.is_cgi (cgi "x"));
  check_bool "file not cgi" false (Workload.Trace.is_cgi (file "/f" 1));
  check_float_eps 1e-6 "total" (1.0 +. 2.0 +. 0.002) (Workload.Trace.total_service t)

(* ------------------------------------------------------------------ *)
(* Logfmt *)

let test_logfmt_roundtrip_explicit () =
  let trace =
    [
      file ~id:0 "/docs/a.html" 512;
      cgi ~id:1 ~demand:1.5 ~out:2048 "query one";
      cgi ~id:2 ~demand:0.25 "k&v=x";
    ]
  in
  match Workload.Logfmt.of_string (Workload.Logfmt.to_string trace) with
  | Ok trace' ->
      check_int "length" 3 (List.length trace');
      List.iter2
        (fun a b ->
          check_string "key preserved" (Workload.Trace.key a) (Workload.Trace.key b);
          check_float_eps 1e-9 "service preserved" (Workload.Trace.service_time a)
            (Workload.Trace.service_time b))
        trace trace'
  | Error e -> Alcotest.fail e

let test_logfmt_comments_and_blanks () =
  let s = "# comment\n\n0\tFILE\t/a\t100\n" in
  match Workload.Logfmt.of_string s with
  | Ok [ item ] ->
      check_string "path" "GET /a" (Workload.Trace.key item)
  | Ok _ -> Alcotest.fail "expected one item"
  | Error e -> Alcotest.fail e

let test_logfmt_bad_lines () =
  check_bool "garbage" true
    (Result.is_error (Workload.Logfmt.of_string "hello world\n"));
  check_bool "bad number" true
    (Result.is_error (Workload.Logfmt.of_string "x\tFILE\t/a\t100\n"));
  (match Workload.Logfmt.of_string "0\tFILE\t/a\tnope\n" with
  | Error e -> check_bool "line number reported" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "should fail")

let prop_logfmt_roundtrip =
  let gen_item =
    QCheck.Gen.(
      let* id = 0 -- 1000 in
      let* is_file = bool in
      if is_file then
        let* bytes = 0 -- 100_000 in
        let* seg = string_size ~gen:(char_range 'a' 'z') (1 -- 10) in
        return (file ~id ("/" ^ seg) bytes)
      else
        let* demand = float_bound_exclusive 10. in
        let* key = string_size ~gen:(char_range 'a' 'z') (1 -- 10) in
        return (cgi ~id ~demand key))
  in
  QCheck.Test.make ~name:"logfmt roundtrips arbitrary traces" ~count:100
    (QCheck.make QCheck.Gen.(list_size (0 -- 20) gen_item))
    (fun trace ->
      match Workload.Logfmt.of_string (Workload.Logfmt.to_string trace) with
      | Ok trace' ->
          List.length trace = List.length trace'
          && List.for_all2
               (fun a b ->
                 Workload.Trace.key a = Workload.Trace.key b
                 && Float.abs
                      (Workload.Trace.service_time a
                      -. Workload.Trace.service_time b)
                    < 1e-9)
               trace trace'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Webstone *)

let test_webstone_mix_weights_sum () =
  let total =
    List.fold_left (fun acc (_, _, w) -> acc +. w) 0. Workload.Webstone.file_mix
  in
  check_float_eps 1e-9 "weights sum to 1" 1.0 total

let test_webstone_mix_frequencies () =
  let trace = Workload.Webstone.file_trace ~seed:5 ~n:20_000 in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun item ->
      match item.Workload.Trace.kind with
      | Workload.Trace.File { path; _ } ->
          Hashtbl.replace counts path
            (1 + Option.value (Hashtbl.find_opt counts path) ~default:0)
      | Workload.Trace.Cgi _ -> Alcotest.fail "files only")
    trace;
  let freq path =
    float_of_int (Option.value (Hashtbl.find_opt counts path) ~default:0)
    /. 20_000.
  in
  check_float_eps 0.02 "500b ~ 35%" 0.35 (freq "/files/doc-500b.html");
  check_float_eps 0.02 "5k ~ 50%" 0.50 (freq "/files/doc-5k.html");
  check_float_eps 0.02 "50k ~ 14%" 0.14 (freq "/files/doc-50k.html")

let test_webstone_mean_bytes () =
  (* 0.35*500 + 0.5*5000 + 0.14*50000 + 0.009*500000 + 0.001*1000000 *)
  check_float_eps 1. "mean" 15175. Workload.Webstone.mean_file_bytes

let test_webstone_null_cgi () =
  let t = Workload.Webstone.null_cgi_trace ~n:5 in
  check_int "count" 5 (List.length t);
  List.iter
    (fun item ->
      check_float_eps 1e-9 "no work" 0. (Workload.Trace.service_time item);
      check_string "all identical" (Workload.Trace.key (List.hd t))
        (Workload.Trace.key item))
    t

let test_webstone_registers_files () =
  let r = Cgi.Registry.create () in
  Workload.Webstone.register_files r;
  check_int "five docs" 5 (Cgi.Registry.file_count r);
  match Cgi.Registry.resolve r "/files/doc-1m.html" with
  | Some (Cgi.Registry.Static_file { bytes; _ }) -> check_int "1MB" 1_000_000 bytes
  | Some (Cgi.Registry.Cgi_script _) | None -> Alcotest.fail "file expected"

(* ------------------------------------------------------------------ *)
(* Synthetic: ADL *)

let adl_small =
  lazy
    (Workload.Synthetic.adl ~seed:11
       ~params:
         { Workload.Synthetic.default_adl with n_requests = 20_000; n_hot = 80 }
       ())

let test_adl_counts () =
  let trace = Lazy.force adl_small in
  check_int "n_requests" 20_000 (Workload.Trace.length trace)

let test_adl_cgi_fraction () =
  let trace = Lazy.force adl_small in
  let n_cgi = List.length (List.filter Workload.Trace.is_cgi trace) in
  check_float_eps 0.02 "~41.3% CGI" 0.413
    (float_of_int n_cgi /. 20_000.)

let test_adl_mean_cgi_time () =
  let trace = Lazy.force adl_small in
  let s = Workload.Analyzer.summarize trace in
  (* Paper: 1.6 s mean CGI service time; generator is calibrated to it. *)
  check_float_eps 0.25 "mean cgi" 1.6 s.Workload.Analyzer.mean_cgi_time

let test_adl_cgi_dominates_service_time () =
  let trace = Lazy.force adl_small in
  let s = Workload.Analyzer.summarize trace in
  (* Paper: 97% of total service time is CGI. *)
  check_bool "> 90%" true (s.Workload.Analyzer.cgi_time_fraction > 0.9)

let test_adl_deterministic () =
  let a = Workload.Synthetic.adl_scaled ~seed:3 ~n:2_000 in
  let b = Workload.Synthetic.adl_scaled ~seed:3 ~n:2_000 in
  check_bool "same seed same trace" true
    (List.for_all2
       (fun x y -> Workload.Trace.key x = Workload.Trace.key y)
       a b);
  let c = Workload.Synthetic.adl_scaled ~seed:4 ~n:2_000 in
  check_bool "different seed differs" true
    (not
       (List.for_all2
          (fun x y -> Workload.Trace.key x = Workload.Trace.key y)
          a c))

let test_adl_repeats_concentrated () =
  (* Hot keys repeat; cold keys are one-offs: so repeats exist but unique
     repeated keys are a small fraction of all keys. *)
  let trace = Lazy.force adl_small in
  let cgis = List.filter Workload.Trace.is_cgi trace in
  let counts = Hashtbl.create 1024 in
  List.iter
    (fun i ->
      let k = Workload.Trace.key i in
      Hashtbl.replace counts k (1 + Option.value (Hashtbl.find_opt counts k) ~default:0))
    cgis;
  let repeated =
    Hashtbl.fold (fun _ n acc -> if n >= 2 then acc + 1 else acc) counts 0
  in
  check_bool "some repetition" true (repeated > 10);
  check_bool "concentrated" true (repeated < 200)

(* ------------------------------------------------------------------ *)
(* Synthetic: coop + unique *)

let test_coop_exact_counts () =
  let t = Workload.Synthetic.coop ~seed:7 ~n:1600 ~n_unique:1122 () in
  check_int "n" 1600 (Workload.Trace.length t);
  check_int "unique" 1122 (Workload.Trace.unique_keys t);
  check_int "upper bound" 478 (Workload.Analyzer.upper_bound_hits t)

let test_coop_all_cgi_cacheable () =
  let t = Workload.Synthetic.coop ~seed:7 ~n:100 ~n_unique:80 ~n_hot:10 () in
  check_bool "all cgi" true (List.for_all Workload.Trace.is_cgi t)

let test_coop_validation () =
  let inv f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "unique > n" true
    (inv (fun () -> Workload.Synthetic.coop ~seed:1 ~n:10 ~n_unique:20 ()));
  check_bool "hot > unique" true
    (inv (fun () ->
         Workload.Synthetic.coop ~seed:1 ~n:30 ~n_unique:20 ~n_hot:25 ()));
  check_bool "bad locality" true
    (inv (fun () ->
         Workload.Synthetic.coop ~seed:1 ~n:30 ~n_unique:20 ~locality:0. ()))

let test_coop_locality_clusters_repeats () =
  (* With strong locality the mean gap (in positions) between successive
     references to the same key must shrink. *)
  let mean_gap trace =
    let last = Hashtbl.create 256 in
    let gaps = ref [] in
    List.iteri
      (fun i item ->
        let k = Workload.Trace.key item in
        (match Hashtbl.find_opt last k with
        | Some j -> gaps := (i - j) :: !gaps
        | None -> ());
        Hashtbl.replace last k i)
      trace;
    match !gaps with
    | [] -> 0.
    | gs ->
        float_of_int (List.fold_left ( + ) 0 gs) /. float_of_int (List.length gs)
  in
  let clustered =
    Workload.Synthetic.coop ~seed:9 ~n:1600 ~n_unique:1122 ~locality:0.02 ()
  in
  let spread =
    Workload.Synthetic.coop ~seed:9 ~n:1600 ~n_unique:1122 ~locality:1.0 ()
  in
  check_bool "locality shrinks gaps" true (mean_gap clustered < mean_gap spread)

let test_unique_cacheable_all_distinct () =
  let t = Workload.Synthetic.unique_cacheable ~n:180 ~demand:1.0 in
  check_int "count" 180 (Workload.Trace.length t);
  check_int "all unique" 180 (Workload.Trace.unique_keys t);
  check_int "no possible hits" 0 (Workload.Analyzer.upper_bound_hits t);
  List.iter
    (fun i -> check_float_eps 1e-9 "demand 1s" 1.0 (Workload.Trace.service_time i))
    t

let test_uncacheable_script_flag () =
  let r = Cgi.Registry.create () in
  Workload.Synthetic.register_scripts r;
  let t = Workload.Synthetic.uncacheable ~n:3 ~demand:1.0 in
  let item = List.hd t in
  match item.Workload.Trace.kind with
  | Workload.Trace.Cgi { script; _ } -> (
      match Cgi.Registry.find_script r script with
      | Some s -> check_bool "not cacheable" false s.Cgi.Script.cacheable
      | None -> Alcotest.fail "script not registered")
  | Workload.Trace.File _ -> Alcotest.fail "cgi expected"

let test_register_trace_files () =
  let r = Cgi.Registry.create () in
  let trace = [ file "/adl/doc1" 100; file "/adl/doc2" 200; cgi "k" ] in
  Workload.Synthetic.register_trace_files r trace;
  check_int "two files" 2 (Cgi.Registry.file_count r)

(* ------------------------------------------------------------------ *)
(* Generator edge cases *)

let test_webstone_empty_mix () =
  let t = Workload.Webstone.file_trace ~seed:1 ~n:0 in
  check_int "empty trace" 0 (Workload.Trace.length t);
  check_int "no keys" 0 (Workload.Trace.unique_keys t)

let test_coop_single_key_zipf () =
  (* A one-key universe is a degenerate Zipf: every request references the
     same key and every request but the first is a potential hit. *)
  let t = Workload.Synthetic.coop ~seed:3 ~n:50 ~n_unique:1 ~n_hot:1 () in
  check_int "n" 50 (Workload.Trace.length t);
  check_int "one key" 1 (Workload.Trace.unique_keys t);
  check_int "all repeats" 49 (Workload.Analyzer.upper_bound_hits t)

let test_coop_replay_determinism () =
  (* Stronger than key equality: the whole item (key, demand, output size)
     must replay identically for a fixed seed — the property the scenario
     byte-identity tests build on. *)
  let gen () =
    Workload.Synthetic.coop ~seed:17 ~n:300 ~n_unique:90 ~n_hot:9
      ~zipf_s:1.2 ~demand:0.25 ~out_bytes:1234 ~locality:0.1 ()
  in
  List.iter2
    (fun a b ->
      check_string "key" (Workload.Trace.key a) (Workload.Trace.key b);
      check_float_eps 0. "service" (Workload.Trace.service_time a)
        (Workload.Trace.service_time b);
      check_int "id" a.Workload.Trace.id b.Workload.Trace.id)
    (gen ()) (gen ())

let test_scenario_window_clipped () =
  (* A crowd window running past the end of the scenario is clipped: the
     post (and, here, decay) phases have zero duration and are dropped,
     and the tiling still ends exactly at the duration. *)
  let sc =
    Workload.Scenario.make ~duration:10.
      ~flash:
        (Workload.Scenario.flash_crowd ~at:6. ~duration:50. ~decay:10. ())
      ()
  in
  (match Workload.Scenario.phases sc with
  | [ ("pre", _, _); ("crowd", c0, c1) ] ->
      check_float_eps 1e-9 "crowd clipped start" 6. c0;
      check_float_eps 1e-9 "crowd clipped stop" 10. c1
  | _ -> Alcotest.fail "clipped schedule expected");
  check_int "zero requests give zero arrivals" 0
    (Array.length
       (Workload.Scenario.arrival_times
          (Workload.Scenario.make ~duration:10.
             ~diurnal:(Workload.Scenario.Sinusoid { period = 10.; trough = 0.5 })
             ())
          ~n:0))

(* ------------------------------------------------------------------ *)
(* Analyzer *)

let test_analyzer_hand_built () =
  (* 3x "a" (2.0s), 2x "b" (0.5s), 1x "c" (3.0s), one file. *)
  let trace =
    [
      cgi ~demand:2.0 "a"; cgi ~demand:2.0 "a"; cgi ~demand:2.0 "a";
      cgi ~demand:0.5 "b"; cgi ~demand:0.5 "b";
      cgi ~demand:3.0 "c";
      file "/f" 0;
    ]
  in
  let rows = Workload.Analyzer.table1 trace ~thresholds:[ 0.4; 1.0 ] in
  (match rows with
  | [ r04; r10 ] ->
      (* threshold 0.4: candidates a,a,a,b,b,c = 6 *)
      check_int "long @0.4" 6 r04.Workload.Analyzer.n_long;
      check_int "repeats @0.4" 3 r04.Workload.Analyzer.total_repeats;
      check_int "unique @0.4" 2 r04.Workload.Analyzer.unique_repeats;
      check_float_eps 1e-9 "saved @0.4" 4.5 r04.Workload.Analyzer.time_saved;
      (* threshold 1.0: candidates a,a,a,c *)
      check_int "long @1.0" 4 r10.Workload.Analyzer.n_long;
      check_int "repeats @1.0" 2 r10.Workload.Analyzer.total_repeats;
      check_int "unique @1.0" 1 r10.Workload.Analyzer.unique_repeats;
      check_float_eps 1e-9 "saved @1.0" 4.0 r10.Workload.Analyzer.time_saved
  | _ -> Alcotest.fail "two rows expected");
  let s = Workload.Analyzer.summarize trace in
  check_int "total" 7 s.Workload.Analyzer.n_total;
  check_int "cgi" 6 s.Workload.Analyzer.n_cgi;
  check_float_eps 1e-9 "longest" 3.0 s.Workload.Analyzer.longest

let test_analyzer_saved_fraction_bounded () =
  let trace = Lazy.force adl_small in
  let rows = Workload.Analyzer.table1 trace ~thresholds:[ 0.5; 1.0; 2.0; 4.0 ] in
  List.iter
    (fun r ->
      check_bool "fraction in [0,1]" true
        (r.Workload.Analyzer.saved_fraction >= 0.
        && r.Workload.Analyzer.saved_fraction <= 1.))
    rows;
  (* Higher thresholds can only reduce the saving. *)
  let fractions = List.map (fun r -> r.Workload.Analyzer.saved_fraction) rows in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && decreasing rest
    | _ -> true
  in
  check_bool "monotone" true (decreasing fractions)

let test_analyzer_files_never_counted () =
  let trace = [ file "/f" 1_000_000; file "/f" 1_000_000 ] in
  let rows = Workload.Analyzer.table1 trace ~thresholds:[ 0.0 ] in
  match rows with
  | [ r ] ->
      check_int "no cgi candidates" 0 r.Workload.Analyzer.n_long;
      check_int "no repeats" 0 r.Workload.Analyzer.total_repeats
  | _ -> Alcotest.fail "one row"

let test_analyzer_empty_trace () =
  let rows = Workload.Analyzer.table1 [] ~thresholds:[ 1.0 ] in
  (match rows with
  | [ r ] ->
      check_int "zero" 0 r.Workload.Analyzer.n_long;
      check_float_eps 1e-9 "zero saved" 0. r.Workload.Analyzer.time_saved
  | _ -> Alcotest.fail "one row");
  let s = Workload.Analyzer.summarize [] in
  check_int "empty summary" 0 s.Workload.Analyzer.n_total;
  check_int "upper bound" 0 (Workload.Analyzer.upper_bound_hits [])

let prop_upper_bound_bounds_repeats =
  QCheck.Test.make ~name:"upper bound = n_cgi - unique_cgi" ~count:100
    QCheck.(list_of_size Gen.(0 -- 50) (int_range 0 10))
    (fun ks ->
      let trace = List.mapi (fun id k -> cgi ~id (Printf.sprintf "k%d" k)) ks in
      let n = List.length trace in
      let unique = Workload.Trace.unique_keys trace in
      Workload.Analyzer.upper_bound_hits trace = n - unique)

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "workload"
    [
      ( "trace",
        [
          Alcotest.test_case "key stability" `Quick test_trace_key_stability;
          Alcotest.test_case "to_request" `Quick test_trace_to_request;
          Alcotest.test_case "service time" `Quick test_trace_service_time;
          Alcotest.test_case "aggregates" `Quick test_trace_aggregates;
        ] );
      ( "logfmt",
        [
          Alcotest.test_case "roundtrip" `Quick test_logfmt_roundtrip_explicit;
          Alcotest.test_case "comments and blanks" `Quick test_logfmt_comments_and_blanks;
          Alcotest.test_case "bad lines rejected" `Quick test_logfmt_bad_lines;
        ] );
      qsuite "logfmt-props" [ prop_logfmt_roundtrip ];
      ( "webstone",
        [
          Alcotest.test_case "mix weights" `Quick test_webstone_mix_weights_sum;
          Alcotest.test_case "mix frequencies" `Quick test_webstone_mix_frequencies;
          Alcotest.test_case "mean bytes" `Quick test_webstone_mean_bytes;
          Alcotest.test_case "null cgi trace" `Quick test_webstone_null_cgi;
          Alcotest.test_case "registers files" `Quick test_webstone_registers_files;
        ] );
      ( "adl",
        [
          Alcotest.test_case "request count" `Quick test_adl_counts;
          Alcotest.test_case "CGI fraction ~41%" `Quick test_adl_cgi_fraction;
          Alcotest.test_case "mean CGI time ~1.6s" `Quick test_adl_mean_cgi_time;
          Alcotest.test_case "CGI dominates service time" `Quick
            test_adl_cgi_dominates_service_time;
          Alcotest.test_case "deterministic per seed" `Quick test_adl_deterministic;
          Alcotest.test_case "repeats concentrated in hot set" `Quick
            test_adl_repeats_concentrated;
        ] );
      ( "coop",
        [
          Alcotest.test_case "exact 1600/1122/478" `Quick test_coop_exact_counts;
          Alcotest.test_case "all CGI" `Quick test_coop_all_cgi_cacheable;
          Alcotest.test_case "validation" `Quick test_coop_validation;
          Alcotest.test_case "locality clusters repeats" `Quick
            test_coop_locality_clusters_repeats;
          Alcotest.test_case "unique workload distinct" `Quick
            test_unique_cacheable_all_distinct;
          Alcotest.test_case "uncacheable script flag" `Quick test_uncacheable_script_flag;
          Alcotest.test_case "register trace files" `Quick test_register_trace_files;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "empty webstone mix" `Quick test_webstone_empty_mix;
          Alcotest.test_case "single-key Zipf" `Quick test_coop_single_key_zipf;
          Alcotest.test_case "replay determinism" `Quick
            test_coop_replay_determinism;
          Alcotest.test_case "crowd window clipped at run end" `Quick
            test_scenario_window_clipped;
        ] );
      ( "analyzer",
        [
          Alcotest.test_case "hand-built trace exact" `Quick test_analyzer_hand_built;
          Alcotest.test_case "saved fraction bounded+monotone" `Quick
            test_analyzer_saved_fraction_bounded;
          Alcotest.test_case "files never candidates" `Quick test_analyzer_files_never_counted;
          Alcotest.test_case "empty trace" `Quick test_analyzer_empty_trace;
        ] );
      qsuite "analyzer-props" [ prop_upper_bound_bounds_repeats ];
    ]
